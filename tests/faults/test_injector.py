"""End-to-end fault injection through the simulator (repro.faults.injector)."""

from __future__ import annotations

from repro.core import conventional_tlc
from repro.faults import FaultEvent, FaultKind, FaultPlan, check_coding_invariants
from repro.flash.errors import ReadRetryModel
from repro.flash.geometry import Geometry
from repro.flash.timing import TimingSpec
from repro.ftl.refresh import RefreshMode, RefreshPolicy
from repro.sim.scheduler import HostRequest
from repro.sim.ssd import SsdSimulator

PAGE = 8192


def _geometry():
    return Geometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=12,
    )


def _simulator(plan, refresh_mode=RefreshMode.BASELINE, period_us=1e9, retry=None):
    return SsdSimulator(
        geometry=_geometry(),
        timing=TimingSpec.tlc_table2(),
        coding=conventional_tlc(),
        refresh_policy=RefreshPolicy(mode=refresh_mode, period_us=period_us),
        retry_model=retry,
        seed=5,
        faults=plan,
    )


def _read(rid, at_us, lpns):
    return HostRequest(rid, at_us, True, tuple(lpns), len(lpns) * PAGE)


def _write(rid, at_us, lpns):
    return HostRequest(rid, at_us, False, tuple(lpns), len(lpns) * PAGE)


class TestProgramFail:
    def test_inflight_page_replayed_and_block_retired(self):
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=2),)
        )
        sim = _simulator(plan)
        writes = [_write(i, 100.0 + i * 200.0, [i]) for i in range(8)]
        metrics = sim.run_requests(writes)
        assert metrics.program_failures == 1
        assert metrics.grown_bad_blocks == 1
        assert metrics.fault_page_moves >= 1
        # The replayed write still lands: every LPN written is mapped.
        for lpn in range(8):
            assert sim.ftl.map.lookup(lpn) is not None
        assert check_coding_invariants(sim.ftl) == []

    def test_ordinal_beyond_run_never_fires(self):
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=10_000),)
        )
        sim = _simulator(plan)
        metrics = sim.run_requests([_write(0, 100.0, [0])])
        assert metrics.program_failures == 0
        assert sim.fault_summary()["events"] == []


class TestEraseFail:
    def test_refresh_erase_failure_retires_block(self):
        # Baseline refresh migrates aged blocks and erases the sources;
        # the first erase is scripted to fail.
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.ERASE_FAIL, op_ordinal=1),)
        )
        sim = _simulator(plan, RefreshMode.BASELINE, period_us=1000.0)
        sim.preload(range(24), -2000.0, -1500.0)
        metrics = sim.run_requests(
            [_read(i, i * 500.0, [i % 24]) for i in range(20)]
        )
        assert metrics.block_erases > 0
        assert metrics.erase_failures == 1
        assert metrics.grown_bad_blocks == 1
        assert check_coding_invariants(sim.ftl) == []


class TestGrownBad:
    def test_live_data_migrates_and_block_stays_retired(self):
        # Preload fills blocks round-robin; retire block 0 mid-run.
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.GROWN_BAD, at_us=2_000.0, block=0),)
        )
        sim = _simulator(plan)
        sim.preload(range(24), -2000.0, -1500.0)
        metrics = sim.run_requests(
            [_read(i, 500.0 + i * 500.0, [i % 24]) for i in range(16)]
        )
        assert metrics.grown_bad_blocks == 1
        block, pool = None, None
        for candidate_pool in sim.ftl.table.planes:
            for in_plane in candidate_pool.retired:
                pool, block = candidate_pool, candidate_pool.block(in_plane)
        assert block is not None, "no block was retired"
        assert block.valid_count == 0
        # All preloaded LPNs remain readable after the migration.
        for lpn in range(24):
            assert sim.ftl.map.lookup(lpn) is not None
        assert check_coding_invariants(sim.ftl) == []

    def test_retired_block_is_not_reallocated(self):
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.GROWN_BAD, at_us=1_000.0, block=0),)
        )
        sim = _simulator(plan)
        sim.preload(range(8), -2000.0, -1500.0)
        # Heavy overwrite traffic after the retirement forces allocation
        # (and likely GC) — the retired block must never rejoin service.
        writes = [_write(i, 2_000.0 + i * 150.0, [i % 8]) for i in range(60)]
        sim.run_requests(writes)
        retired = [
            pool.block(in_plane)
            for pool in sim.ftl.table.planes
            for in_plane in pool.retired
        ]
        assert len(retired) == 1
        assert retired[0].valid_count == 0
        assert check_coding_invariants(sim.ftl) == []


class TestUncorrectableRead:
    def test_forced_retry_exhaustion_and_relocation(self):
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.UNCORRECTABLE_READ, op_ordinal=1),)
        )
        retry = ReadRetryModel(fail_prob=0.0, max_retries=7)
        sim = _simulator(plan, retry=retry)
        sim.preload(range(4), -2000.0, -1500.0)
        metrics = sim.run_requests([_read(0, 100.0, [0]), _read(1, 5_000.0, [0])])
        assert metrics.uncorrectable_reads == 1
        # The forced read pays the whole retry ladder even though
        # fail_prob is zero.
        assert metrics.read_retries == retry.max_retries
        # The page was rebuilt and relocated; it is still mapped.
        assert sim.ftl.map.lookup(0) is not None
        assert check_coding_invariants(sim.ftl) == []

    def test_read_reclaim_threshold_triggers_migration(self):
        plan = FaultPlan(read_reclaim_threshold=4)
        retry = ReadRetryModel(fail_prob=0.9, max_retries=4)
        sim = _simulator(plan, retry=retry)
        sim.preload(range(4), -2000.0, -1500.0)
        reads = [_read(i, 100.0 + i * 300.0, [i % 4]) for i in range(40)]
        metrics = sim.run_requests(reads)
        assert metrics.read_retries > 4
        assert metrics.read_reclaims >= 1
        assert metrics.fault_page_moves >= 1
        assert check_coding_invariants(sim.ftl) == []


class TestDieFail:
    def test_die_leaves_allocation_and_data_survives(self):
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.DIE_FAIL, at_us=5_000.0, die=1),)
        )
        sim = _simulator(plan)
        sim.preload(range(24), -2000.0, -1500.0)
        requests = [_read(i, i * 500.0, [i % 24]) for i in range(20)] + [
            _write(100 + i, 11_000.0 + i * 100.0, [i]) for i in range(6)
        ]
        metrics = sim.run_requests(sorted(requests, key=lambda r: r.arrival_us))
        assert metrics.die_failures == 1
        # Writes after the die loss still succeed on surviving planes.
        for lpn in range(24):
            assert sim.ftl.map.lookup(lpn) is not None
        assert check_coding_invariants(sim.ftl) == []
        summary = sim.fault_summary()
        assert [e["kind"] for e in summary["events"]] == ["die_fail"]


class TestDeterminismAndSummary:
    def _run(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=2),
                FaultEvent(kind=FaultKind.UNCORRECTABLE_READ, op_ordinal=3),
                FaultEvent(kind=FaultKind.GROWN_BAD, at_us=2_000.0, block=3),
            ),
            read_reclaim_threshold=4,
            name="mixed",
        )
        sim = _simulator(plan, retry=ReadRetryModel(fail_prob=0.3))
        sim.preload(range(24), -2000.0, -1500.0)
        requests = [_write(i, 100.0 + i * 200.0, [i % 12]) for i in range(6)] + [
            _read(50 + i, 4_000.0 + i * 100.0, [i % 24]) for i in range(30)
        ]
        metrics = sim.run_requests(sorted(requests, key=lambda r: r.arrival_us))
        return metrics, sim.fault_summary(), check_coding_invariants(sim.ftl)

    def test_identical_runs_fire_identically(self):
        metrics_a, summary_a, violations_a = self._run()
        metrics_b, summary_b, violations_b = self._run()
        assert violations_a == violations_b == []
        assert summary_a == summary_b
        assert (
            metrics_a.read_response.summary() == metrics_b.read_response.summary()
        )

    def test_summary_shape(self):
        _, summary, _ = self._run()
        assert summary["plan"]["kind"] == "fault_plan"
        assert summary["plan"]["name"] == "mixed"
        fired = summary["fired"]
        assert fired["program_fail"] == 1
        assert fired["uncorrectable_read"] == 1
        assert fired["grown_bad"] == 1
        kinds = {event["kind"] for event in summary["events"]}
        assert {"program_fail", "uncorrectable_read", "grown_bad"} <= kinds
        for event in summary["events"]:
            assert event["t_us"] >= 0.0

    def test_no_plan_means_no_summary(self):
        sim = _simulator(None)
        sim.run_requests([_write(0, 100.0, [0])])
        assert sim.fault_summary() is None
