"""Tests for fault plans (repro.faults.plan)."""

from __future__ import annotations

import pickle

import pytest

from repro.faults import (
    OP_KIND_OF,
    PLAN_SCHEMA,
    TIMED_KINDS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    load_plan,
    save_plan,
)


class TestFaultEventValidation:
    def test_timed_kinds_need_at_us(self):
        with pytest.raises(ValueError, match="need at_us"):
            FaultEvent(kind=FaultKind.GROWN_BAD, block=3)

    def test_timed_kinds_reject_op_ordinal(self):
        with pytest.raises(ValueError, match="op_ordinal is invalid"):
            FaultEvent(
                kind=FaultKind.DIE_FAIL, at_us=10.0, die=0, op_ordinal=1
            )

    def test_grown_bad_needs_block(self):
        with pytest.raises(ValueError, match="target block"):
            FaultEvent(kind=FaultKind.GROWN_BAD, at_us=10.0)

    def test_die_fail_needs_die(self):
        with pytest.raises(ValueError, match="target die"):
            FaultEvent(kind=FaultKind.DIE_FAIL, at_us=10.0)

    def test_op_coupled_kinds_need_ordinal(self):
        for kind in OP_KIND_OF:
            with pytest.raises(ValueError, match="need op_ordinal"):
                FaultEvent(kind=kind)

    def test_op_ordinal_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=0)

    def test_op_coupled_kinds_reject_at_us(self):
        with pytest.raises(ValueError, match="at_us is invalid"):
            FaultEvent(kind=FaultKind.ERASE_FAIL, op_ordinal=1, at_us=5.0)

    def test_every_kind_is_timed_or_op_coupled(self):
        # POWER_CUT is the one kind living in both trigger domains.
        assert TIMED_KINDS | set(OP_KIND_OF) | {FaultKind.POWER_CUT} == set(
            FaultKind
        )


class TestPowerCutValidation:
    def test_accepts_either_trigger(self):
        FaultEvent(kind=FaultKind.POWER_CUT, at_us=50.0)
        FaultEvent(kind=FaultKind.POWER_CUT, op_ordinal=17)

    def test_rejects_neither_trigger(self):
        with pytest.raises(ValueError, match="exactly one of"):
            FaultEvent(kind=FaultKind.POWER_CUT)

    def test_rejects_both_triggers(self):
        with pytest.raises(ValueError, match="exactly one of"):
            FaultEvent(kind=FaultKind.POWER_CUT, at_us=5.0, op_ordinal=3)

    def test_ordinal_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultEvent(kind=FaultKind.POWER_CUT, op_ordinal=0)

    def test_rejects_targets(self):
        with pytest.raises(ValueError, match="block/die are invalid"):
            FaultEvent(kind=FaultKind.POWER_CUT, at_us=5.0, block=3)

    def test_round_trips_through_dict(self):
        for event in (
            FaultEvent(kind=FaultKind.POWER_CUT, at_us=123.5),
            FaultEvent(kind=FaultKind.POWER_CUT, op_ordinal=42),
        ):
            assert FaultEvent.from_dict(event.to_dict()) == event


class TestFaultPlanValidation:
    def test_duplicate_ordinal_rejected(self):
        events = (
            FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=3),
            FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=3),
        )
        with pytest.raises(ValueError, match="duplicate program_fail"):
            FaultPlan(events=events)

    def test_same_ordinal_different_kinds_allowed(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=3),
                FaultEvent(kind=FaultKind.ERASE_FAIL, op_ordinal=3),
            )
        )
        assert len(plan) == 2

    def test_rejects_non_events(self):
        with pytest.raises(TypeError, match="expected FaultEvent"):
            FaultPlan(events=({"kind": "program_fail"},))

    def test_read_reclaim_threshold_must_be_positive(self):
        with pytest.raises(ValueError, match="read_reclaim_threshold"):
            FaultPlan(read_reclaim_threshold=0)

    def test_count_and_len(self):
        plan = FaultPlan(
            events=(
                FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=1),
                FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=2),
                FaultEvent(kind=FaultKind.GROWN_BAD, at_us=5.0, block=0),
            )
        )
        assert len(plan) == 3
        assert plan.count(FaultKind.PROGRAM_FAIL) == 2
        assert plan.count(FaultKind.DIE_FAIL) == 0

    def test_plan_is_hashable_and_picklable(self):
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.PROGRAM_FAIL, op_ordinal=1),),
            read_reclaim_threshold=8,
        )
        assert hash(plan) == hash(pickle.loads(pickle.dumps(plan)))
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestGenerate:
    def test_same_seed_same_plan(self):
        kwargs = dict(
            duration_us=10_000.0,
            total_blocks=64,
            total_dies=4,
            program_fails=3,
            erase_fails=2,
            grown_bad=2,
            uncorrectable_reads=4,
            die_fails=1,
            adjust_interrupts=2,
            read_reclaim_threshold=16,
        )
        assert FaultPlan.generate(7, **kwargs) == FaultPlan.generate(7, **kwargs)
        assert FaultPlan.generate(7, **kwargs) != FaultPlan.generate(8, **kwargs)

    def test_counts_and_targets_in_range(self):
        plan = FaultPlan.generate(
            3,
            duration_us=1_000.0,
            total_blocks=16,
            total_dies=2,
            program_fails=2,
            erase_fails=1,
            grown_bad=3,
            uncorrectable_reads=2,
            die_fails=1,
            adjust_interrupts=1,
        )
        assert plan.count(FaultKind.PROGRAM_FAIL) == 2
        assert plan.count(FaultKind.GROWN_BAD) == 3
        assert plan.count(FaultKind.DIE_FAIL) == 1
        for event in plan.events:
            if event.kind in TIMED_KINDS:
                assert 0.0 < event.at_us < 1_000.0
            else:
                assert event.op_ordinal >= 1
            if event.kind is FaultKind.GROWN_BAD:
                assert 0 <= event.block < 16
            if event.kind is FaultKind.DIE_FAIL:
                assert 0 <= event.die < 2
        assert plan.seed == 3

    def test_ordinal_count_clamped_to_range(self):
        plan = FaultPlan.generate(
            1, duration_us=100.0, total_blocks=4,
            erase_fails=50, max_erase_ordinal=5,
        )
        assert plan.count(FaultKind.ERASE_FAIL) == 5

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="duration_us"):
            FaultPlan.generate(1, duration_us=0.0, total_blocks=4)
        with pytest.raises(ValueError, match="total_blocks"):
            FaultPlan.generate(1, duration_us=10.0, total_blocks=0)


class TestSerialisation:
    def _plan(self):
        return FaultPlan.generate(
            5,
            duration_us=2_000.0,
            total_blocks=32,
            total_dies=2,
            program_fails=2,
            grown_bad=1,
            die_fails=1,
            adjust_interrupts=1,
            read_reclaim_threshold=12,
            name="round-trip",
        )

    def test_dict_round_trip(self):
        plan = self._plan()
        data = plan.to_dict()
        assert data["kind"] == "fault_plan"
        assert FaultPlan.from_dict(data) == plan

    def test_from_dict_rejects_wrong_kind(self):
        with pytest.raises(ValueError, match="not a fault plan"):
            FaultPlan.from_dict({"kind": "run_manifest"})

    def test_to_dict_stamps_schema(self):
        assert self._plan().to_dict()["schema"] == PLAN_SCHEMA

    def test_from_dict_rejects_future_schema(self):
        data = self._plan().to_dict()
        data["schema"] = PLAN_SCHEMA + 1
        with pytest.raises(ValueError, match="unsupported fault plan schema"):
            FaultPlan.from_dict(data)

    def test_from_dict_accepts_missing_schema(self):
        # Plans written before versioning carry no schema field.
        data = self._plan().to_dict()
        del data["schema"]
        assert FaultPlan.from_dict(data) == self._plan()

    def test_unknown_kind_names_the_entry(self):
        data = {
            "events": [
                {"kind": "program_fail", "op_ordinal": 1},
                {"kind": "bogus", "op_ordinal": 2},
            ]
        }
        with pytest.raises(
            ValueError, match=r"events\[1\]: unknown fault kind 'bogus'"
        ):
            FaultPlan.from_dict(data)

    def test_malformed_field_names_the_entry(self):
        data = {"events": [{"kind": "grown_bad", "at_us": "soon", "block": 1}]}
        with pytest.raises(
            ValueError, match=r"events\[0\]: at_us must be a number"
        ):
            FaultPlan.from_dict(data)
        data = {"events": [{"kind": "power_cut", "op_ordinal": 1.5}]}
        with pytest.raises(
            ValueError, match=r"events\[0\]: op_ordinal must be an integer"
        ):
            FaultPlan.from_dict(data)

    def test_unknown_event_field_rejected(self):
        data = {"events": [{"kind": "power_cut", "op_ordinal": 3, "when": 1}]}
        with pytest.raises(
            ValueError, match=r"events\[0\]: unknown fault event field"
        ):
            FaultPlan.from_dict(data)

    def test_missing_kind_rejected(self):
        data = {"events": [{"op_ordinal": 3}]}
        with pytest.raises(ValueError, match=r"events\[0\]: .*'kind'"):
            FaultPlan.from_dict(data)

    def test_events_must_be_a_list(self):
        with pytest.raises(ValueError, match="events must be a list"):
            FaultPlan.from_dict({"events": {"kind": "power_cut"}})

    def test_file_round_trip(self, tmp_path):
        plan = self._plan()
        path = save_plan(plan, tmp_path / "plan.json")
        assert load_plan(path) == plan

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_plan(path)

    def test_load_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(ValueError, match="JSON object"):
            load_plan(path)

    def test_with_name(self):
        plan = self._plan()
        assert plan.with_name("renamed").name == "renamed"
        assert plan.with_name("renamed").events == plan.events
