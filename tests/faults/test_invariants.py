"""Tests for the coding/recovery invariant checker (repro.faults.invariants).

The load-bearing case is the torn-reprogram invariant: an IDA adjustment
interrupted mid-refresh must resolve to the old or the new coding, never
the in-between :data:`~repro.flash.block.TORN_WL` state.
"""

from __future__ import annotations

from repro.core import conventional_tlc
from repro.faults import FaultEvent, FaultKind, FaultPlan, check_coding_invariants
from repro.flash.geometry import Geometry
from repro.flash.timing import TimingSpec
from repro.ftl.refresh import RefreshMode, RefreshPolicy
from repro.sim.scheduler import HostRequest
from repro.sim.ssd import SsdSimulator

PAGE = 8192


def _geometry():
    return Geometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=12,
    )


def _ida_simulator(plan, period_us=1000.0):
    return SsdSimulator(
        geometry=_geometry(),
        timing=TimingSpec.tlc_table2(),
        coding=conventional_tlc(),
        refresh_policy=RefreshPolicy(mode=RefreshMode.IDA, period_us=period_us),
        seed=5,
        faults=plan,
    )


def _aged_reads(sim, n=20):
    sim.preload(range(24), -2000.0, -1500.0)
    return [
        HostRequest(i, i * 500.0, True, (i % 24,), PAGE) for i in range(n)
    ]


class TestCleanDevice:
    def test_healthy_run_has_no_violations(self):
        sim = _ida_simulator(None)
        sim.run_requests(_aged_reads(sim))
        assert check_coding_invariants(sim.ftl) == []


class TestTornWordlineDetection:
    def test_manually_torn_wordline_is_flagged(self):
        sim = _ida_simulator(None)
        sim.run_requests(_aged_reads(sim))
        block = sim.ftl.table.blocks[0]
        block.mark_wordline_torn(0)
        violations = check_coding_invariants(sim.ftl)
        assert any("left torn" in v for v in violations)

    def test_uncommitted_journal_intent_is_flagged(self):
        sim = _ida_simulator(None)
        sim.run_requests(_aged_reads(sim))
        sim.ftl.enable_fault_recovery()
        sim.ftl._journal[(0, 0)] = (1, (0,))
        violations = check_coding_invariants(sim.ftl)
        assert any("uncommitted adjust-journal intent" in v for v in violations)


class TestAdjustInterruptRecovery:
    def test_interrupted_adjust_rolls_forward(self):
        """ISSUE 5 acceptance: the torn-reprogram invariant holds under an
        injected mid-refresh interruption."""
        plan = FaultPlan(
            events=(FaultEvent(kind=FaultKind.ADJUST_INTERRUPT, op_ordinal=1),)
        )
        sim = _ida_simulator(plan)
        metrics = sim.run_requests(_aged_reads(sim))
        # The IDA refresh actually adjusted wordlines, the scripted
        # interruption hit one of them, and recovery resolved it.
        assert metrics.refresh_adjusted_wordlines > 0
        assert metrics.torn_adjust_recoveries == 1
        assert sim.fault_summary()["fired"]["adjust_interrupt"] == 1
        assert check_coding_invariants(sim.ftl) == []

    def test_every_interrupt_in_ladder_recovers(self):
        plan = FaultPlan(
            events=tuple(
                FaultEvent(kind=FaultKind.ADJUST_INTERRUPT, op_ordinal=i)
                for i in range(1, 4)
            )
        )
        sim = _ida_simulator(plan)
        metrics = sim.run_requests(_aged_reads(sim, n=30))
        summary = sim.fault_summary()
        fired = summary["fired"]["adjust_interrupt"]
        assert fired >= 1
        # Each interrupt either rolled the wordline forward or found its
        # intent superseded (block erased while the op was in flight) —
        # never a torn wordline at rest either way.
        assert metrics.torn_adjust_recoveries <= fired
        assert check_coding_invariants(sim.ftl) == []
        recoveries = [
            e for e in summary["events"] if e["kind"] == "adjust_interrupt"
        ]
        assert len(recoveries) == fired
        assert all(e["wordline"] >= 0 for e in recoveries)
