"""IDA merge invariants over *arbitrary* valid Gray codings.

The paper claims IDA "is general, which can be combined with any coding
scheme in any high bit density flash" (Sec. III-B).  These property tests
back that claim: the merge invariants hold not just for the standard
coding family but for randomly permuted/inverted Gray codings too.
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.coding import GrayCoding, standard_coding
from repro.core.ida import IdaTransform, merge_states


@st.composite
def random_gray_codings(draw):
    """Valid Gray codings via bit-role permutation and value inversion."""
    bits = draw(st.integers(min_value=2, max_value=4))
    permutation = draw(st.permutations(range(bits)))
    inversion = draw(st.tuples(*[st.integers(0, 1) for _ in range(bits)]))
    base = standard_coding(bits)
    states = tuple(
        tuple(base.states[s][permutation[b]] ^ inversion[b] for b in range(bits))
        for s in range(base.num_states)
    )
    return GrayCoding("random", states)


@st.composite
def coding_and_valid_bits(draw):
    coding = draw(random_gray_codings())
    mask = draw(st.integers(min_value=1, max_value=coding.num_states - 1))
    valid = tuple(b for b in range(coding.bits) if mask & (1 << b))
    if not valid:
        valid = (coding.bits - 1,)
    return coding, valid


class TestGenericMergeInvariants:
    @given(coding_and_valid_bits())
    def test_rightward_only(self, case):
        coding, valid = case
        move = merge_states(coding, valid)
        assert all(move[s] >= s for s in range(coding.num_states))

    @given(coding_and_valid_bits())
    def test_surviving_bits_preserved(self, case):
        coding, valid = case
        move = merge_states(coding, valid)
        for state in range(coding.num_states):
            for bit in valid:
                assert coding.states[move[state]][bit] == coding.states[state][bit]

    @given(coding_and_valid_bits())
    def test_merged_set_size(self, case):
        coding, valid = case
        transform = IdaTransform(coding, valid)
        assert len(transform.merged_states) == 1 << len(valid)

    @given(coding_and_valid_bits())
    def test_senses_never_increase(self, case):
        coding, valid = case
        transform = IdaTransform(coding, valid)
        for bit in valid:
            assert transform.senses(bit) <= coding.senses(bit)

    @given(coding_and_valid_bits())
    def test_total_senses_lower_bounded_by_merged_boundaries(self, case):
        # Distinguishing 2^v merged states needs at least |merged|-1
        # boundaries in total.  Equality holds iff the merged sequence is
        # itself Gray — true for the standard family's suffix merges (see
        # the next test) but NOT for arbitrary codings, where adjacent
        # merged states may differ in several surviving bits.  This is
        # why the paper's coding choice matters: IDA composes with any
        # coding, but the conventional family extracts the optimum.
        coding, valid = case
        transform = IdaTransform(coding, valid)
        total = sum(transform.senses(bit) for bit in valid)
        assert total >= len(transform.merged_states) - 1

    def test_standard_family_suffix_merges_are_optimal(self):
        # For the conventional codings, every kept-suffix merge hits the
        # information-theoretic minimum: |merged|-1 total senses.
        for bits in (2, 3, 4):
            coding = standard_coding(bits)
            for start in range(1, bits):
                valid = tuple(range(start, bits))
                transform = IdaTransform(coding, valid)
                total = sum(transform.senses(bit) for bit in valid)
                assert total == len(transform.merged_states) - 1

    @given(coding_and_valid_bits())
    def test_merge_idempotent(self, case):
        coding, valid = case
        move = merge_states(coding, valid)
        assert all(move[move[s]] == move[s] for s in range(coding.num_states))

    @given(coding_and_valid_bits())
    def test_readback_correct_after_merge(self, case):
        # Boundary sensing on the merged layout recovers every surviving
        # bit of every original state.
        coding, valid = case
        transform = IdaTransform(coding, valid)
        for state in range(coding.num_states):
            target = transform.target_state(state)
            for bit in valid:
                boundaries = transform.boundaries(bit)
                crossed = sum(1 for b in boundaries if target >= b)
                lowest = transform.merged_states[0]
                anchor = coding.states[lowest][bit]
                sensed = anchor if crossed % 2 == 0 else 1 - anchor
                assert sensed == coding.states[state][bit]
