"""Tests for the GrayCoding machinery (repro.core.coding)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.coding import GrayCoding, sense_level, standard_coding


class TestSenseLevel:
    def test_powers_of_two(self):
        assert sense_level(1) == 0
        assert sense_level(2) == 1
        assert sense_level(4) == 2
        assert sense_level(8) == 3

    @pytest.mark.parametrize("bad", [0, -1, 3, 5, 6, 7, 9])
    def test_rejects_non_powers(self, bad):
        with pytest.raises(ValueError):
            sense_level(bad)


class TestValidation:
    def test_rejects_wrong_state_count(self):
        with pytest.raises(ValueError, match="needs 4 states"):
            GrayCoding("bad", ((1, 1), (0, 1), (0, 0)))

    def test_rejects_duplicate_patterns(self):
        with pytest.raises(ValueError, match="duplicate"):
            GrayCoding("bad", ((1, 1), (0, 1), (1, 1), (0, 0)))

    def test_rejects_non_gray_transition(self):
        # (1,1) -> (0,0) flips two bits at once.
        with pytest.raises(ValueError, match="exactly one bit"):
            GrayCoding("bad", ((1, 1), (0, 0), (0, 1), (1, 0)))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="non-binary"):
            GrayCoding("bad", ((1, 2), (0, 2), (0, 0), (1, 0)))

    def test_rejects_ragged_states(self):
        with pytest.raises(ValueError, match="bits"):
            GrayCoding("bad", ((1, 1), (0, 1), (0, 0, 1), (1, 0)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GrayCoding("bad", ())


class TestStandardFamily:
    @pytest.mark.parametrize(
        "bits,expected", [(1, (1,)), (2, (1, 2)), (3, (1, 2, 4)), (4, (1, 2, 4, 8))]
    )
    def test_sense_counts(self, bits, expected):
        assert standard_coding(bits).sense_counts() == expected

    def test_erased_state_is_all_ones(self):
        for bits in range(1, 5):
            assert standard_coding(bits).states[0] == (1,) * bits

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            standard_coding(0)

    def test_names(self):
        assert standard_coding(3).name == "tlc-1-2-4"
        assert standard_coding(3, name="custom").name == "custom"
        assert standard_coding(5).name == "standard-5bit"

    def test_total_boundaries_cover_all(self):
        # Every inter-state boundary must be used by exactly one bit
        # (adjacent Gray states differ in exactly one bit).
        for bits in range(1, 5):
            coding = standard_coding(bits)
            used = [b for bit in range(bits) for b in coding.boundaries(bit)]
            assert sorted(used) == list(range(1, coding.num_states))


class TestPaperFigure2:
    """The exact Fig. 2 table: states S1..S8 as (LSB, CSB, MSB)."""

    EXPECTED = [
        (1, 1, 1),  # S1 (erased)
        (1, 1, 0),  # S2
        (1, 0, 0),  # S3
        (1, 0, 1),  # S4
        (0, 0, 1),  # S5
        (0, 0, 0),  # S6
        (0, 1, 0),  # S7
        (0, 1, 1),  # S8
    ]

    def test_state_table(self, tlc):
        assert list(tlc.states) == self.EXPECTED

    def test_writing_001_lands_in_s5(self, tlc):
        # Paper Fig. 3: writing LSB=0, CSB=0, MSB=1 forms state S5.
        assert tlc.encode((0, 0, 1)) == 4

    def test_lsb_reads_with_v4(self, tlc):
        assert tlc.read_voltages(0) == ("V4",)

    def test_csb_reads_with_v2_v6(self, tlc):
        assert tlc.read_voltages(1) == ("V2", "V6")

    def test_msb_reads_with_v1_v3_v5_v7(self, tlc):
        assert tlc.read_voltages(2) == ("V1", "V3", "V5", "V7")


class TestQueries:
    def test_state_for_roundtrip(self, tlc):
        for state in range(8):
            assert tlc.state_for(tlc.decode(state)) == state

    def test_state_for_unknown_raises(self, mlc):
        with pytest.raises(KeyError):
            mlc.state_for((1, 1, 1))

    def test_bit_value(self, tlc):
        assert tlc.bit_value(4, 2) == 1  # S5 MSB
        assert tlc.bit_value(4, 0) == 0  # S5 LSB

    def test_boundaries_out_of_range(self, tlc):
        with pytest.raises(IndexError):
            tlc.boundaries(3)

    def test_describe_mentions_all_states(self, tlc):
        text = tlc.describe()
        for s in range(1, 9):
            assert f"S{s}" in text


class TestSensingRule:
    """Hardware sensing (boundary comparisons) must agree with decode."""

    @pytest.mark.parametrize("bits", [1, 2, 3, 4])
    def test_sensing_matches_decode_standard(self, bits):
        coding = standard_coding(bits)
        for state in range(coding.num_states):
            for bit in range(bits):
                assert coding.read_bit_by_sensing(state, bit) == coding.states[state][bit]

    def test_sensing_matches_decode_232(self, tlc232):
        for state in range(8):
            for bit in range(3):
                assert (
                    tlc232.read_bit_by_sensing(state, bit)
                    == tlc232.states[state][bit]
                )


@st.composite
def gray_codings(draw):
    """Random valid Gray codings built from random flip sequences."""
    bits = draw(st.integers(min_value=1, max_value=4))
    num_states = 1 << bits
    # Build a random Hamiltonian Gray path on the hypercube by shuffling
    # the standard reflected code's bit roles and inverting random bits.
    permutation = draw(st.permutations(range(bits)))
    inversion = draw(st.tuples(*[st.integers(0, 1) for _ in range(bits)]))
    base = standard_coding(bits)
    states = tuple(
        tuple(base.states[s][permutation[b]] ^ inversion[b] for b in range(bits))
        for s in range(num_states)
    )
    return GrayCoding("random", states)


class TestProperties:
    @given(gray_codings())
    def test_sense_counts_sum_to_boundaries(self, coding):
        assert sum(coding.sense_counts()) == coding.num_states - 1

    @given(gray_codings())
    def test_sensing_rule_always_matches_decode(self, coding):
        for state in range(coding.num_states):
            for bit in range(coding.bits):
                assert (
                    coding.read_bit_by_sensing(state, bit)
                    == coding.states[state][bit]
                )

    @given(gray_codings())
    def test_encode_decode_roundtrip(self, coding):
        for state in range(coding.num_states):
            assert coding.encode(coding.decode(state)) == state
