"""Tests for the Table I wordline classifier (repro.core.cases)."""

from __future__ import annotations

import pytest

from repro.core.cases import (
    TLC_CASE_TABLE,
    WordlineAction,
    classify_tlc_case,
    classify_validity,
)


class TestTableOne:
    """Each of the eight Table I rows, exactly as printed in the paper."""

    def test_case1_all_valid(self):
        d = classify_tlc_case(True, True, True)
        assert d.case == 1
        assert d.action is WordlineAction.ADJUST
        assert d.pages_to_move == (0,)  # move LSB
        assert d.adjust_bits == (1, 2)  # adjust for CSB/MSB

    def test_case2_lsb_invalid(self):
        d = classify_tlc_case(False, True, True)
        assert d.case == 2
        assert d.action is WordlineAction.ADJUST
        assert d.pages_to_move == ()
        assert d.adjust_bits == (1, 2)

    def test_case3_csb_invalid(self):
        d = classify_tlc_case(True, False, True)
        assert d.case == 3
        assert d.action is WordlineAction.ADJUST
        assert d.pages_to_move == (0,)  # move LSB
        assert d.adjust_bits == (2,)  # adjust for MSB only

    def test_case4_lsb_csb_invalid(self):
        d = classify_tlc_case(False, False, True)
        assert d.case == 4
        assert d.action is WordlineAction.ADJUST
        assert d.pages_to_move == ()
        assert d.adjust_bits == (2,)

    def test_case5_msb_invalid(self):
        d = classify_tlc_case(True, True, False)
        assert d.case == 5
        assert d.action is WordlineAction.MOVE
        assert d.pages_to_move == (0, 1)  # move LSB and CSB
        assert d.adjust_bits == ()

    def test_case6_only_csb_valid(self):
        d = classify_tlc_case(False, True, False)
        assert d.case == 6
        assert d.action is WordlineAction.MOVE
        assert d.pages_to_move == (1,)  # move CSB

    def test_case7_only_lsb_valid(self):
        d = classify_tlc_case(True, False, False)
        assert d.case == 7
        assert d.action is WordlineAction.MOVE
        assert d.pages_to_move == (0,)  # move LSB

    def test_case8_nothing_valid(self):
        d = classify_tlc_case(False, False, False)
        assert d.case == 8
        assert d.action is WordlineAction.NOTHING
        assert d.pages_to_move == ()
        assert d.adjust_bits == ()

    def test_table_covers_all_cases(self):
        assert sorted(TLC_CASE_TABLE) == list(range(1, 9))

    def test_ida_applies_exactly_for_cases_1_to_4(self):
        for case, decision in TLC_CASE_TABLE.items():
            assert decision.applies_ida == (case <= 4)


class TestGenericDensities:
    def test_mlc_msb_valid_lsb_invalid(self):
        d = classify_validity((False, True))
        assert d.action is WordlineAction.ADJUST
        assert d.adjust_bits == (1,)
        assert d.case is None  # case numbers are TLC-specific

    def test_mlc_both_valid_moves_lsb(self):
        d = classify_validity((True, True))
        assert d.action is WordlineAction.ADJUST
        assert d.pages_to_move == (0,)
        assert d.adjust_bits == (1,)

    def test_mlc_msb_invalid(self):
        d = classify_validity((True, False))
        assert d.action is WordlineAction.MOVE
        assert d.pages_to_move == (0,)

    def test_qlc_fig6_scenario(self):
        # Bits 1 and 2 invalidated, bits 3 and 4 valid.
        d = classify_validity((False, False, True, True))
        assert d.action is WordlineAction.ADJUST
        assert d.adjust_bits == (2, 3)
        assert d.pages_to_move == ()

    def test_qlc_gap_in_valid_run(self):
        # bit2 invalid splits the run: only bit3 is kept; bits 0-1 move.
        d = classify_validity((True, True, False, True))
        assert d.action is WordlineAction.ADJUST
        assert d.adjust_bits == (3,)
        assert d.pages_to_move == (0, 1)

    def test_qlc_all_valid_keeps_suffix_above_lsb(self):
        d = classify_validity((True, True, True, True))
        assert d.adjust_bits == (1, 2, 3)
        assert d.pages_to_move == (0,)

    def test_single_bit_cell_rejected(self):
        with pytest.raises(ValueError, match="multi-bit"):
            classify_validity((True,))


class TestDecisionInvariants:
    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_every_valid_page_is_handled_exactly_once(self, bits):
        # Each valid page is either moved or kept; never both, never lost.
        for mask in range(1 << bits):
            flags = tuple(bool(mask & (1 << b)) for b in range(bits))
            d = classify_validity(flags)
            kept = set(d.adjust_bits) & {b for b in range(bits) if flags[b]}
            moved = set(d.pages_to_move)
            valid = {b for b in range(bits) if flags[b]}
            assert moved | kept == valid
            assert not (moved & kept)

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_adjust_bits_form_top_suffix(self, bits):
        for mask in range(1 << bits):
            flags = tuple(bool(mask & (1 << b)) for b in range(bits))
            d = classify_validity(flags)
            if d.adjust_bits:
                assert d.adjust_bits[-1] == bits - 1
                assert list(d.adjust_bits) == list(
                    range(d.adjust_bits[0], bits)
                )
                assert d.adjust_bits[0] >= 1  # never keeps the LSB slot
