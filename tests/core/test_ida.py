"""Tests for the IDA transform (repro.core.ida) — Figs. 5 & 6."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.coding import standard_coding
from repro.core.ida import IdaTransform, merge_states


class TestFig5TlcLsbInvalid:
    """The paper's Fig. 5 scenario: TLC, LSB invalidated."""

    @pytest.fixture
    def transform(self, tlc):
        return IdaTransform(tlc, (1, 2))

    def test_moves_match_paper(self, transform):
        # S1->S8, S2->S7, S3->S6, S4->S5; S5..S8 stay.
        assert transform.move_map == (7, 6, 5, 4, 4, 5, 6, 7)

    def test_merged_states_are_top_half(self, transform):
        assert transform.merged_states == (4, 5, 6, 7)

    def test_csb_reads_with_one_sense_at_v6(self, transform):
        assert transform.senses(1) == 1
        assert transform.read_voltages(1) == ("V6",)

    def test_msb_reads_with_two_senses_at_v5_v7(self, transform):
        assert transform.senses(2) == 2
        assert transform.read_voltages(2) == ("V5", "V7")

    def test_decode_preserves_surviving_bits(self, transform, tlc):
        for state in range(8):
            target = transform.target_state(state)
            for bit in (1, 2):
                assert transform.decode(target, bit) == tlc.states[state][bit]

    def test_max_move_distance_is_full_range(self, transform):
        assert transform.max_move_distance() == 7  # S1 -> S8

    def test_describe_mentions_moves(self, transform):
        assert "S1->S8" in transform.describe()


class TestTlcMsbOnly:
    """Table I cases 3-4: only the MSB survives."""

    def test_single_sense(self, tlc):
        transform = IdaTransform(tlc, (2,))
        assert transform.senses(2) == 1
        assert transform.merged_states == (6, 7)
        assert transform.read_voltages(2) == ("V7",)


class TestFig6Qlc:
    """The paper's Fig. 6: QLC with the two lower bits invalidated."""

    def test_bit4_drops_8_to_2(self, qlc):
        transform = IdaTransform(qlc, (2, 3))
        assert qlc.senses(3) == 8
        assert transform.senses(3) == 2

    def test_bit3_drops_4_to_1(self, qlc):
        transform = IdaTransform(qlc, (2, 3))
        assert qlc.senses(2) == 4
        assert transform.senses(2) == 1

    def test_four_merged_states(self, qlc):
        transform = IdaTransform(qlc, (2, 3))
        assert len(transform.merged_states) == 4


class TestMlc:
    def test_msb_drops_2_to_1(self, mlc):
        transform = IdaTransform(mlc, (1,))
        assert transform.senses(1) == 1
        assert len(transform.merged_states) == 2


class TestAlternate232:
    def test_ida_composes_with_vendor_coding(self, tlc232):
        # The paper notes IDA is general: it applies to any coding.
        transform = IdaTransform(tlc232, (1, 2))
        assert transform.senses(1) <= tlc232.senses(1)
        assert transform.senses(2) <= tlc232.senses(2)
        assert len(transform.merged_states) == 4


class TestErrors:
    def test_empty_valid_bits_rejected(self, tlc):
        with pytest.raises(ValueError, match="at least one valid bit"):
            merge_states(tlc, ())

    def test_out_of_range_bits_rejected(self, tlc):
        with pytest.raises(ValueError, match="out of range"):
            merge_states(tlc, (3,))

    def test_duplicate_bits_rejected(self, tlc):
        with pytest.raises(ValueError, match="duplicate"):
            merge_states(tlc, (1, 1, 2))

    def test_reading_invalid_bit_rejected(self, tlc):
        transform = IdaTransform(tlc, (1, 2))
        with pytest.raises(ValueError, match="invalid under this transform"):
            transform.senses(0)
        with pytest.raises(ValueError, match="invalid under this transform"):
            transform.boundaries(0)

    def test_decoding_unmerged_state_rejected(self, tlc):
        transform = IdaTransform(tlc, (1, 2))
        with pytest.raises(ValueError, match="cannot occur"):
            transform.decode(0, 2)


def _valid_bit_subsets(bits: int):
    subsets = []
    for mask in range(1, 1 << bits):
        subsets.append(tuple(b for b in range(bits) if mask & (1 << b)))
    return subsets


class TestProperties:
    @given(
        bits=st.integers(min_value=2, max_value=4),
        mask=st.integers(min_value=1, max_value=15),
    )
    def test_moves_are_rightward_only(self, bits, mask):
        # ISPP can only raise a cell's threshold voltage.
        coding = standard_coding(bits)
        valid = tuple(b for b in range(bits) if mask & (1 << b))
        valid = tuple(b for b in valid if b < bits)
        if not valid:
            return
        move = merge_states(coding, valid)
        assert all(move[s] >= s for s in range(coding.num_states))

    @given(
        bits=st.integers(min_value=2, max_value=4),
        mask=st.integers(min_value=1, max_value=15),
    )
    def test_valid_bits_preserved_by_merge(self, bits, mask):
        # Merging must never change the value of any surviving bit.
        coding = standard_coding(bits)
        valid = tuple(b for b in range(bits) if mask & (1 << b) and b < bits)
        if not valid:
            return
        move = merge_states(coding, valid)
        for state in range(coding.num_states):
            for bit in valid:
                assert (
                    coding.states[move[state]][bit] == coding.states[state][bit]
                )

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_sense_counts_never_increase(self, bits):
        coding = standard_coding(bits)
        for valid in _valid_bit_subsets(bits):
            transform = IdaTransform(coding, valid)
            for bit in valid:
                assert transform.senses(bit) <= coding.senses(bit)

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_merged_state_count_is_two_to_valid_bits(self, bits):
        # Distinct projections of the valid bits <-> merged states.
        coding = standard_coding(bits)
        for valid in _valid_bit_subsets(bits):
            transform = IdaTransform(coding, valid)
            assert len(transform.merged_states) == 1 << len(valid)

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_all_bits_valid_is_identity(self, bits):
        coding = standard_coding(bits)
        transform = IdaTransform(coding, tuple(range(bits)))
        assert transform.move_map == tuple(range(coding.num_states))
        for bit in range(bits):
            assert transform.senses(bit) == coding.senses(bit)

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_merge_is_idempotent(self, bits):
        # Applying the move map twice changes nothing further.
        coding = standard_coding(bits)
        for valid in _valid_bit_subsets(bits):
            move = merge_states(coding, valid)
            assert all(move[move[s]] == move[s] for s in range(coding.num_states))

    @pytest.mark.parametrize("bits", [3, 4])
    def test_suffix_merge_sense_counts_halve(self, bits):
        # Keeping bits k..b-1 yields the standard (b-k)-bit ladder:
        # the kept bits read with 1, 2, 4, ... senses.
        coding = standard_coding(bits)
        for start in range(1, bits):
            transform = IdaTransform(coding, tuple(range(start, bits)))
            expected = [1 << i for i in range(bits - start)]
            got = [transform.senses(bit) for bit in range(start, bits)]
            assert got == expected
