"""Tests for the read-latency model (repro.core.readpath)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import IdaTransform, ReadLatencyModel


class TestTableTwoLatencies:
    """Table II: 50 / 100 / 150 us for LSB / CSB / MSB."""

    def test_tlc_page_latencies(self, tlc):
        model = ReadLatencyModel(tr_base_us=50.0, dtr_us=50.0)
        assert model.page_latency_us(tlc, 0) == 50.0
        assert model.page_latency_us(tlc, 1) == 100.0
        assert model.page_latency_us(tlc, 2) == 150.0

    def test_mlc_device_latencies(self, mlc):
        # Sec. V-G: 65 and 115 us.
        model = ReadLatencyModel(tr_base_us=65.0, dtr_us=50.0)
        assert model.page_latency_us(mlc, 0) == 65.0
        assert model.page_latency_us(mlc, 1) == 115.0

    def test_ida_latencies_match_fig5(self, tlc):
        model = ReadLatencyModel()
        transform = IdaTransform(tlc, (1, 2))
        assert model.ida_latency_us(transform, 1) == 50.0  # CSB -> LSB speed
        assert model.ida_latency_us(transform, 2) == 100.0  # MSB -> CSB speed

    def test_msb_only_reaches_lsb_latency(self, tlc):
        # Sec. V-A: "reading such MSB page data takes the same time as an
        # LSB read".
        model = ReadLatencyModel()
        transform = IdaTransform(tlc, (2,))
        assert model.ida_latency_us(transform, 2) == 50.0


class TestNonPowerOfTwoSenses:
    def test_three_senses_charged_at_four(self):
        # The 2-3-2 coding's CSB read (3 senses) rounds up conservatively.
        model = ReadLatencyModel()
        assert model.latency_us(3) == model.latency_us(4) == 150.0

    def test_232_coding_latencies(self, tlc232):
        model = ReadLatencyModel()
        assert model.page_latency_us(tlc232, 0) == 100.0
        assert model.page_latency_us(tlc232, 1) == 150.0
        assert model.page_latency_us(tlc232, 2) == 100.0


class TestDtrSweep:
    @pytest.mark.parametrize("dtr", [30.0, 40.0, 50.0, 60.0, 70.0])
    def test_with_dtr(self, dtr):
        model = ReadLatencyModel().with_dtr(dtr)
        assert model.latency_us(1) == 50.0
        assert model.latency_us(2) == 50.0 + dtr
        assert model.latency_us(4) == 50.0 + 2 * dtr

    def test_with_dtr_preserves_base(self):
        model = ReadLatencyModel(tr_base_us=65.0).with_dtr(25.0)
        assert model.tr_base_us == 65.0
        assert model.dtr_us == 25.0


class TestValidation:
    def test_rejects_zero_base(self):
        with pytest.raises(ValueError):
            ReadLatencyModel(tr_base_us=0.0)

    def test_rejects_negative_dtr(self):
        with pytest.raises(ValueError):
            ReadLatencyModel(dtr_us=-1.0)

    def test_rejects_zero_senses(self):
        with pytest.raises(ValueError):
            ReadLatencyModel().latency_us(0)


class TestProperties:
    @given(st.integers(min_value=1, max_value=64))
    def test_latency_monotone_in_senses(self, senses):
        model = ReadLatencyModel()
        assert model.latency_us(senses + 1) >= model.latency_us(senses)

    @given(
        st.floats(min_value=1.0, max_value=500.0),
        st.floats(min_value=0.0, max_value=200.0),
    )
    def test_single_sense_is_base(self, base, dtr):
        model = ReadLatencyModel(tr_base_us=base, dtr_us=dtr)
        assert model.latency_us(1) == base
