"""Tests for the named codings (repro.core.{tlc,mlc,qlc})."""

from __future__ import annotations

from repro.core import (
    CSB,
    LSB,
    MSB,
    PAGE_NAMES,
    QLC_BITS,
    conventional_mlc,
    conventional_qlc,
    conventional_tlc,
    tlc_232,
)


class TestConventionalTlc:
    def test_senses(self):
        assert conventional_tlc().sense_counts() == (1, 2, 4)

    def test_bit_aliases(self):
        assert (LSB, CSB, MSB) == (0, 1, 2)
        assert PAGE_NAMES == ("LSB", "CSB", "MSB")

    def test_deterministic(self):
        assert conventional_tlc().states == conventional_tlc().states


class TestTlc232:
    def test_senses(self):
        # Sec. III-B: "two, three, and two memory accesses".
        assert tlc_232().sense_counts() == (2, 3, 2)

    def test_starts_erased(self):
        assert tlc_232().states[0] == (1, 1, 1)

    def test_smaller_read_variation_than_conventional(self):
        conv = conventional_tlc().sense_counts()
        alt = tlc_232().sense_counts()
        assert max(alt) - min(alt) < max(conv) - min(conv)


class TestMlc:
    def test_senses(self):
        assert conventional_mlc().sense_counts() == (1, 2)

    def test_four_states(self):
        assert conventional_mlc().num_states == 4


class TestQlc:
    def test_senses(self):
        assert conventional_qlc().sense_counts() == (1, 2, 4, 8)

    def test_sixteen_states(self):
        assert conventional_qlc().num_states == 16

    def test_bits_constant(self):
        assert conventional_qlc().bits == QLC_BITS == 4
