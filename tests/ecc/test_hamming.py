"""Tests for the SEC-DED codec (repro.ecc.hamming)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.hamming import DecodeStatus, HammingCodec


@pytest.fixture
def codec():
    return HammingCodec(data_bits=32)


def _random_word(rng, bits):
    return rng.integers(0, 2, bits, dtype=np.int8)


class TestCleanPath:
    def test_roundtrip(self, codec, rng):
        data = _random_word(rng, 32)
        result = codec.decode(codec.encode(data))
        assert result.status is DecodeStatus.CLEAN
        np.testing.assert_array_equal(result.data, data)

    def test_codeword_length(self, codec):
        # 32 data bits need 6 parity bits + 1 overall parity.
        assert codec.parity_bits == 6
        assert codec.codeword_bits == 39

    @pytest.mark.parametrize("bits", [1, 4, 11, 57, 64, 120])
    def test_various_widths_roundtrip(self, bits, rng):
        codec = HammingCodec(bits)
        data = _random_word(rng, bits)
        result = codec.decode(codec.encode(data))
        assert result.status is DecodeStatus.CLEAN
        np.testing.assert_array_equal(result.data, data)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            HammingCodec(0)

    def test_rejects_wrong_shape(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.zeros(31, dtype=np.int8))
        with pytest.raises(ValueError):
            codec.decode(np.zeros(38, dtype=np.int8))

    def test_rejects_non_binary(self, codec):
        with pytest.raises(ValueError):
            codec.encode(np.full(32, 2, dtype=np.int8))


class TestSingleErrorCorrection:
    def test_every_position_correctable(self, codec, rng):
        data = _random_word(rng, 32)
        codeword = codec.encode(data)
        for position in range(codec.codeword_bits):
            corrupted = codec.inject_errors(codeword, [position])
            result = codec.decode(corrupted)
            assert result.status is DecodeStatus.CORRECTED, f"position {position}"
            np.testing.assert_array_equal(result.data, data)

    def test_corrected_position_reported(self, codec, rng):
        data = _random_word(rng, 32)
        codeword = codec.encode(data)
        result = codec.decode(codec.inject_errors(codeword, [5]))
        assert result.corrected_position is not None
        assert result.ok


class TestDoubleErrorDetection:
    def test_double_errors_detected_not_miscorrected(self, codec, rng):
        data = _random_word(rng, 32)
        codeword = codec.encode(data)
        for _ in range(50):
            a, b = rng.choice(codec.codeword_bits, size=2, replace=False)
            result = codec.decode(codec.inject_errors(codeword, [int(a), int(b)]))
            assert result.status is DecodeStatus.UNCORRECTABLE
            assert not result.ok


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=st.data())
    def test_random_single_error_roundtrip(self, data):
        bits = data.draw(st.integers(min_value=2, max_value=80))
        codec = HammingCodec(bits)
        word = np.array(
            data.draw(st.lists(st.integers(0, 1), min_size=bits, max_size=bits)),
            dtype=np.int8,
        )
        position = data.draw(st.integers(0, codec.codeword_bits - 1))
        result = codec.decode(codec.inject_errors(codec.encode(word), [position]))
        assert result.ok
        np.testing.assert_array_equal(result.data, word)
