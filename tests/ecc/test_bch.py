"""Tests for the BCH codec (repro.ecc.bch) and GF(2^m) (repro.ecc.gf)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ecc.bch import BchCode
from repro.ecc.gf import DEFAULT_PRIMITIVE_POLYS, GF2m


class TestGaloisField:
    @pytest.mark.parametrize("m", sorted(DEFAULT_PRIMITIVE_POLYS))
    def test_multiplicative_group(self, m):
        field = GF2m(m)
        # alpha generates all non-zero elements.
        seen = set()
        for power in range(field.order - 1):
            seen.add(field.pow_alpha(power))
        assert seen == set(range(1, field.order))

    def test_mul_inverse(self):
        field = GF2m(5)
        for a in range(1, field.order):
            assert field.mul(a, field.inv(a)) == 1

    def test_div_consistent_with_mul(self):
        field = GF2m(4)
        for a in range(field.order):
            for b in range(1, field.order):
                assert field.mul(field.div(a, b), b) == a

    def test_zero_rules(self):
        field = GF2m(4)
        assert field.mul(0, 7) == 0
        assert field.div(0, 3) == 0
        with pytest.raises(ZeroDivisionError):
            field.div(1, 0)
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_poly_eval_horner(self):
        field = GF2m(4)
        # p(x) = 1 + x: p(alpha) = 1 ^ alpha.
        assert field.poly_eval([1, 1], 2) == 1 ^ 2

    def test_rejects_non_primitive(self):
        # x^4 + x^3 + x^2 + x + 1 divides x^5 - 1: order 5, not primitive.
        with pytest.raises(ValueError, match="not primitive"):
            GF2m(4, 0b11111)

    def test_rejects_wrong_degree(self):
        with pytest.raises(ValueError, match="degree"):
            GF2m(4, 0b1011)


class TestBchRoundtrip:
    @pytest.mark.parametrize("m,t", [(4, 1), (4, 2), (5, 2), (6, 4), (8, 8)])
    def test_parameters(self, m, t):
        code = BchCode(m, t)
        assert code.n == (1 << m) - 1
        assert 0 < code.k < code.n
        assert code.parity_bits <= m * t

    def test_known_code_sizes(self):
        # Classic textbook parameters.
        assert (BchCode(4, 1).n, BchCode(4, 1).k) == (15, 11)
        assert (BchCode(4, 2).n, BchCode(4, 2).k) == (15, 7)
        assert (BchCode(6, 4).n, BchCode(6, 4).k) == (63, 39)

    def test_clean_roundtrip(self, rng):
        code = BchCode(6, 3)
        data = rng.integers(0, 2, code.k, dtype=np.int8)
        result = code.decode(code.encode(data))
        assert result.ok and result.corrected == 0
        np.testing.assert_array_equal(result.data, data)

    @pytest.mark.parametrize("errors", [1, 2, 3, 4])
    def test_corrects_up_to_t(self, errors, rng):
        code = BchCode(6, 4)
        data = rng.integers(0, 2, code.k, dtype=np.int8)
        codeword = code.encode(data)
        for _ in range(10):
            positions = rng.choice(code.n, size=errors, replace=False)
            corrupted = codeword.copy()
            for p in positions:
                corrupted[p] ^= 1
            result = code.decode(corrupted)
            assert result.ok
            assert result.corrected == errors
            np.testing.assert_array_equal(result.data, data)

    def test_beyond_t_never_returns_wrong_data_silently_as_clean(self, rng):
        # Bounded-distance decoding may miscorrect t+1 errors into a
        # different codeword, but must never report corrected == 0 with
        # altered data.
        code = BchCode(5, 2)
        data = rng.integers(0, 2, code.k, dtype=np.int8)
        codeword = code.encode(data)
        for _ in range(20):
            positions = rng.choice(code.n, size=3, replace=False)
            corrupted = codeword.copy()
            for p in positions:
                corrupted[p] ^= 1
            result = code.decode(corrupted)
            if result.ok and result.corrected == 0:
                np.testing.assert_array_equal(result.data, corrupted[: code.k])

    def test_rejects_bad_shapes(self):
        code = BchCode(4, 1)
        with pytest.raises(ValueError):
            code.encode(np.zeros(5, dtype=np.int8))
        with pytest.raises(ValueError):
            code.decode(np.zeros(10, dtype=np.int8))
        with pytest.raises(ValueError):
            code.encode(np.full(code.k, 3, dtype=np.int8))

    def test_rejects_overstrong_t(self):
        # 2t >= n pulls (x + 1) into the generator: zero data bits left.
        with pytest.raises(ValueError, match="no data bits"):
            BchCode(4, 8)

    def test_t7_m4_is_the_degenerate_one_bit_code(self):
        # BCH(15, 1, 7): a single data bit survives, and it round-trips.
        code = BchCode(4, 7)
        assert code.k == 1
        result = code.decode(code.encode(np.array([1], dtype=np.int8)))
        assert result.ok and result.data[0] == 1


class TestBchProperties:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_random_error_patterns_within_t(self, data):
        code = BchCode(5, 3)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        word = rng.integers(0, 2, code.k, dtype=np.int8)
        errors = data.draw(st.integers(min_value=0, max_value=3))
        codeword = code.encode(word)
        if errors:
            positions = rng.choice(code.n, size=errors, replace=False)
            for p in positions:
                codeword[p] ^= 1
        result = code.decode(codeword)
        assert result.ok
        assert result.corrected == errors
        np.testing.assert_array_equal(result.data, word)

    def test_all_codewords_are_multiples_of_generator(self, rng):
        # Structural: every encoded word has zero syndromes.
        code = BchCode(4, 2)
        for _ in range(20):
            data = rng.integers(0, 2, code.k, dtype=np.int8)
            assert not any(code._syndromes(code.encode(data)))
