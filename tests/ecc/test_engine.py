"""Tests for the ECC engine front-end (repro.ecc.engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc.engine import EccEngine
from repro.ecc.hamming import DecodeStatus


class TestEngine:
    def test_default_timing_matches_table2(self):
        assert EccEngine().decode_us == 20.0

    def test_encode_decode_through_engine(self, rng):
        engine = EccEngine(codec_data_bits=48)
        data = rng.integers(0, 2, 48, dtype=np.int8)
        result = engine.decode(engine.encode(data))
        assert result.status is DecodeStatus.CLEAN
        np.testing.assert_array_equal(result.data, data)

    def test_corrects_injected_error(self, rng):
        engine = EccEngine()
        data = rng.integers(0, 2, 64, dtype=np.int8)
        codeword = engine.encode(data)
        corrupted = engine.codec.inject_errors(codeword, [10])
        result = engine.decode(corrupted)
        assert result.status is DecodeStatus.CORRECTED
        np.testing.assert_array_equal(result.data, data)

    def test_sensing_levels_delegates_to_ldpc(self, rng):
        engine = EccEngine()
        assert engine.sensing_levels(rng, 1e-6) == 0

    def test_rejects_bad_timing(self):
        with pytest.raises(ValueError):
            EccEngine(decode_us=0.0)
