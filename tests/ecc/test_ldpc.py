"""Tests for the LDPC retry model (repro.ecc.ldpc)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ecc.ldpc import LdpcModel


@pytest.fixture
def model():
    return LdpcModel()


class TestHardFailure:
    def test_half_at_threshold(self, model):
        assert model.hard_failure_probability(model.hard_threshold_rber) == pytest.approx(0.5)

    def test_monotone_in_rber(self, model):
        probs = [model.hard_failure_probability(r) for r in (1e-4, 1e-3, 2e-3, 5e-3)]
        assert probs == sorted(probs)

    def test_low_rber_rarely_fails(self, model):
        assert model.hard_failure_probability(1e-4) < 0.1

    def test_rejects_negative(self, model):
        with pytest.raises(ValueError):
            model.hard_failure_probability(-1.0)


class TestLevels:
    def test_decay_per_level(self, model):
        rber = 3e-3
        for level in range(5):
            assert model.level_failure_probability(rber, level + 1) < (
                model.level_failure_probability(rber, level)
            )

    def test_level_zero_is_hard(self, model):
        assert model.level_failure_probability(1e-3, 0) == (
            model.hard_failure_probability(1e-3)
        )

    def test_rejects_negative_level(self, model):
        with pytest.raises(ValueError):
            model.level_failure_probability(1e-3, -1)


class TestSampling:
    def test_low_rber_rarely_retries(self, model):
        rng = np.random.default_rng(0)
        samples = [model.sample_sensing_levels(rng, 1e-5) for _ in range(500)]
        assert np.mean(samples) < 0.1

    def test_high_rber_retries_often(self, model):
        rng = np.random.default_rng(0)
        samples = [model.sample_sensing_levels(rng, 1e-2) for _ in range(500)]
        assert np.mean(samples) > 0.5

    def test_bounded_by_max_levels(self, model):
        rng = np.random.default_rng(0)
        assert all(
            model.sample_sensing_levels(rng, 0.05) <= model.max_levels
            for _ in range(300)
        )

    def test_expected_matches_sampled(self, model):
        rng = np.random.default_rng(42)
        rber = 3e-3
        samples = [model.sample_sensing_levels(rng, rber) for _ in range(40_000)]
        assert np.mean(samples) == pytest.approx(
            model.expected_sensing_levels(rber), rel=0.08
        )


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            LdpcModel(hard_threshold_rber=0.0)
        with pytest.raises(ValueError):
            LdpcModel(level_decay=1.0)
        with pytest.raises(ValueError):
            LdpcModel(max_levels=0)
