"""Bit-exact data-integrity integration: IDA never changes stored data.

The paper's "Critical Points" (Sec. III-C) claim the IDA coding changes
*how* data is stored and read, never *what* is stored, and that the
ECC-protected refresh pipeline cannot lose data even when the voltage
adjustment disturbs pages.  These tests execute that full pipeline on the
cell-exact chip with a real SEC-DED codec and genuinely flipped bits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import classify_validity, conventional_qlc, conventional_tlc
from repro.ecc import DecodeStatus, EccEngine
from repro.flash.chip import CellChip


class TestIdaRefreshPipelineBitExact:
    """Model Fig. 7b end to end on one block of real cells."""

    @pytest.fixture
    def setup(self, rng):
        chip = CellChip(
            conventional_tlc(), num_blocks=2, wordlines_per_block=8,
            cells_per_wordline=64,
        )
        written = {}
        for wl in range(8):
            pages = chip.random_pages(rng)
            chip.program_wordline(0, wl, pages)
            for bit in range(3):
                written[(wl, bit)] = pages[bit]
        return chip, written

    def test_full_pipeline_preserves_every_surviving_bit(self, setup, rng):
        chip, written = setup
        # Invalidate a random subset of lower pages (updates elsewhere).
        validity = {}
        for wl in range(8):
            lsb_valid = bool(rng.integers(0, 2))
            csb_valid = bool(rng.integers(0, 2))
            validity[wl] = (lsb_valid, csb_valid, True)

        # Step 3-4 of Fig. 7b: classify and adjust.
        for wl in range(8):
            decision = classify_validity(validity[wl])
            if decision.applies_ida:
                chip.adjust_wordline(0, wl, decision.adjust_bits)

        # Step 5: re-read every kept page and compare bit-for-bit.
        for wl in range(8):
            decision = classify_validity(validity[wl])
            for bit in decision.adjust_bits:
                np.testing.assert_array_equal(
                    chip.read_page(0, wl, bit), written[(wl, bit)],
                    err_msg=f"wordline {wl} bit {bit}",
                )

    def test_disturbed_page_recovers_through_ecc(self, setup, rng):
        # A page corrupted by the adjustment is recovered from the
        # ECC-decoded copy held in DRAM and written to the new block.
        chip, written = setup
        engine = EccEngine(codec_data_bits=64)

        # Before adjustment the refresh reads + decodes everything: hold
        # the error-free codewords (this is the DRAM copy of Fig. 7b).
        dram = {
            key: engine.encode(page) for key, page in written.items()
        }

        chip.adjust_wordline(0, 0, (1, 2))
        # Simulate a disturb: flip one bit of the raw CSB page readback.
        disturbed = chip.read_page(0, 0, 1).copy()
        disturbed[7] ^= 1

        # The disturbed readback differs from the stored data...
        assert not np.array_equal(disturbed, written[(0, 1)])
        # ...but the DRAM copy decodes clean, and even a corrupted
        # codeword with a single flip corrects.
        result = engine.decode(dram[(0, 1)])
        assert result.status is DecodeStatus.CLEAN
        np.testing.assert_array_equal(result.data, written[(0, 1)])
        corrupted_codeword = engine.codec.inject_errors(dram[(0, 1)], [7])
        recovered = engine.decode(corrupted_codeword)
        assert recovered.ok
        np.testing.assert_array_equal(recovered.data, written[(0, 1)])

    def test_erase_cycle_returns_block_to_service(self, setup, rng):
        chip, _ = setup
        chip.adjust_wordline(0, 3, (2,))
        chip.erase_block(0)
        fresh = chip.random_pages(rng)
        chip.program_wordline(0, 3, fresh)
        np.testing.assert_array_equal(chip.read_page(0, 3, 0), fresh[0])


class TestQlcPipeline:
    def test_fig6_pipeline_bit_exact(self, rng):
        chip = CellChip(conventional_qlc(), wordlines_per_block=4, cells_per_wordline=32)
        pages = chip.random_pages(rng)
        chip.program_wordline(0, 0, pages)
        decision = classify_validity((False, False, True, True))
        chip.adjust_wordline(0, 0, decision.adjust_bits)
        np.testing.assert_array_equal(chip.read_page(0, 0, 2), pages[2])
        np.testing.assert_array_equal(chip.read_page(0, 0, 3), pages[3])
        assert chip.page_senses(0, 0, 3) == 2
        assert chip.page_senses(0, 0, 2) == 1
