"""End-to-end integration tests: the paper's headline trends, small scale.

These assert the *shape* of the paper's results on quick-scale runs:
IDA wins on read-intensive workloads, the benefit decays with the
adjustment error rate, grows with dtR, and the refresh accounting obeys
the Sec. III-C formulas.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import RunScale
from repro.experiments.runner import (
    normalized_read_response,
    run_workload,
)
from repro.experiments.systems import baseline, ida
from repro.workloads import workload

WORKLOADS = ["usr_1", "src2_0", "proj_1"]


@pytest.fixture(scope="module")
def scale():
    return RunScale.quick()


@pytest.fixture(scope="module")
def runs(scale):
    """Baseline + IDA variants for a few workloads, shared by the tests."""
    out = {}
    for name in WORKLOADS:
        spec = workload(name)
        out[name] = {
            "baseline": run_workload(baseline(), spec, scale),
            "ida-e0": run_workload(ida(0.0), spec, scale),
            "ida-e20": run_workload(ida(0.2), spec, scale),
            "ida-e80": run_workload(ida(0.8), spec, scale),
        }
    return out


class TestHeadlineResult:
    def test_ida_e20_improves_read_response_on_average(self, runs):
        norms = [
            normalized_read_response(per["ida-e20"], per["baseline"])
            for per in runs.values()
        ]
        average = sum(norms) / len(norms)
        assert average < 0.97, f"IDA-E20 should win on average, got {norms}"

    def test_ida_e0_is_upper_bound(self, runs):
        # E0 (no disturb) must beat E20 on average (Sec. IV-C).
        e0 = sum(
            normalized_read_response(per["ida-e0"], per["baseline"])
            for per in runs.values()
        )
        e20 = sum(
            normalized_read_response(per["ida-e20"], per["baseline"])
            for per in runs.values()
        )
        assert e0 <= e20 + 0.02

    def test_benefit_decays_with_error_rate(self, runs):
        # Fig. 8: E80's benefit is far smaller than E0's.
        e0 = sum(
            normalized_read_response(per["ida-e0"], per["baseline"])
            for per in runs.values()
        )
        e80 = sum(
            normalized_read_response(per["ida-e80"], per["baseline"])
            for per in runs.values()
        )
        assert e0 < e80

    def test_ida_serves_fast_reads(self, runs):
        for name, per in runs.items():
            mix = per["ida-e20"].metrics.read_mix
            assert mix.ida_fast_reads > 0, name
            assert per["ida-e20"].ida_blocks > 0 or (
                per["ida-e20"].metrics.refresh_adjusted_wordlines > 0
            )


class TestRefreshAccountingShapes:
    def test_table4_structure(self, runs):
        # Extra reads ~ kept pages (about half the valid pages); extra
        # writes ~ E20 of the kept pages.
        for name, per in runs.items():
            reports = [
                r
                for r in per["ida-e20"].refresh_reports
                if r.n_adjusted_wordlines > 0
            ]
            assert reports, name
            n = len(reports)
            valid = sum(r.n_valid for r in reports) / n
            extra_reads = sum(r.extra_reads for r in reports) / n
            extra_writes = sum(r.extra_writes for r in reports) / n
            assert 0.2 * valid < extra_reads < 0.95 * valid
            assert extra_writes == pytest.approx(0.2 * extra_reads, rel=0.4)

    def test_e0_writes_nothing_back(self, runs):
        for per in runs.values():
            assert per["ida-e0"].metrics.refresh_corrupted_pages == 0

    def test_in_use_blocks_grow_moderately(self, runs):
        # Sec. III-C: IDA keeps refresh target blocks alive, so the
        # in-use census grows, but boundedly.
        for per in runs.values():
            base_blocks = per["baseline"].in_use_blocks
            ida_blocks = per["ida-e20"].in_use_blocks
            assert ida_blocks <= base_blocks * 2.0


class TestDataConsistency:
    def test_all_live_data_mapped_after_runs(self, scale):
        result = run_workload(ida(0.2), workload("proj_3"), scale)
        # RunResult doesn't expose the FTL, so re-derive via a fresh sim
        # kept simple: the census must balance.
        assert result.metrics.unmapped_reads < result.metrics.read_mix.total


class TestDtrTrend:
    def test_higher_dtr_bigger_benefit(self, scale):
        # Averaged over workloads: single-workload runs at quick scale
        # carry a few percent of scheduling noise (see EXPERIMENTS.md).
        norms = {30.0: [], 70.0: []}
        for name in WORKLOADS:
            spec = workload(name)
            for dtr in norms:
                base = run_workload(baseline().with_dtr(dtr), spec, scale)
                variant = run_workload(ida(0.2).with_dtr(dtr), spec, scale)
                norms[dtr].append(normalized_read_response(variant, base))
        avg30 = sum(norms[30.0]) / len(norms[30.0])
        avg70 = sum(norms[70.0]) / len(norms[70.0])
        assert avg70 <= avg30 + 0.02
