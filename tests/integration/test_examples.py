"""Smoke tests for the runnable examples (the cheap, simulation-free ones).

The heavy examples (quickstart step 4, refresh_tradeoff, lifetime_study)
run full simulations and are exercised through the experiments tests;
here we execute the coding-level walkthroughs end to end so the examples
directory cannot rot.
"""

from __future__ import annotations

import importlib.util
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheapExamples:
    def test_coding_explorer_runs(self, capsys):
        module = _load("coding_explorer")
        module.main()
        out = capsys.readouterr().out
        assert "tlc-conventional-1-2-4" in out
        assert "qlc" in out
        assert "2 -> 1" in out  # the CSB merge

    def test_data_integrity_demo_runs(self, capsys):
        module = _load("data_integrity_demo")
        module.main()
        out = capsys.readouterr().out
        assert "case 2" in out
        assert "data recovered exactly" in out

    def test_quickstart_coding_steps_run(self, capsys):
        module = _load("quickstart")
        module.step1_conventional_coding()
        module.step2_ida_merge()
        module.step3_real_cells()
        out = capsys.readouterr().out
        assert "150 us" in out
        assert "S5-S8" in out

    def test_all_examples_have_docstrings_and_main(self):
        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            assert source.lstrip().startswith(("#!", '"""')), path.name
            assert "def main()" in source, path.name
            assert '__name__ == "__main__"' in source, path.name
