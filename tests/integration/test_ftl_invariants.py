"""Property-based FTL invariants under random operation sequences.

Drives the FTL with arbitrary interleavings of host writes, host reads,
untimed churn and refresh ticks, then checks the global invariants that
every other result depends on:

* the forward and reverse maps are exact inverses;
* every mapped PPN points at a VALID page and vice versa (no leaks, no
  dangling validity);
* per-block valid counts equal the mapped-page census;
* sense counts are always consistent with the wordline mode;
* total live data equals the set of LPNs ever written.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import conventional_tlc
from repro.flash.block import CONVENTIONAL_WL, PageState
from repro.flash.geometry import Geometry
from repro.ftl.ftl import Ftl
from repro.ftl.gc import GcPolicy
from repro.ftl.refresh import RefreshMode, RefreshPolicy

LPN_SPACE = 40


def _build_ftl(mode: RefreshMode, error_rate: float) -> Ftl:
    geometry = Geometry(
        channels=1,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=8,
        pages_per_block=12,
    )
    return Ftl(
        geometry,
        conventional_tlc(),
        RefreshPolicy(mode=mode, period_us=500.0, error_rate=error_rate),
        gc_policy=GcPolicy(low_watermark=1, target_free=2),
        rng=np.random.default_rng(7),
    )


def _check_invariants(ftl: Ftl, live_lpns: set[int]) -> None:
    # 1. Forward/reverse inverse + validity.
    mapped_ppns = set()
    for lpn in live_lpns:
        ppn = ftl.map.lookup(lpn)
        assert ppn is not None, f"lost LPN {lpn}"
        assert ftl.map.owner(ppn) == lpn
        mapped_ppns.add(ppn)
        block, page = ftl.table.block_of_ppn(ppn)
        assert block.state_of(page) is PageState.VALID
    # 2. Census: every VALID page is mapped; counts agree.
    total_valid = 0
    for block in ftl.table.blocks:
        valid_here = 0
        for page in range(block.pages_per_block):
            if block.state_of(page) is PageState.VALID:
                ppn = ftl.geometry.page_number(block.index, page)
                assert ppn in mapped_ppns, (
                    f"valid page {ppn} in block {block.index} is unmapped"
                )
                valid_here += 1
        assert valid_here == block.valid_count, f"block {block.index}"
        total_valid += valid_here
    assert total_valid == len(live_lpns)
    # 3. Sense consistency with wordline modes.
    for lpn in live_lpns:
        op = ftl.host_read(lpn, 1e12)
        block, page = ftl.table.block_of_ppn(ftl.map.lookup(lpn))
        mode = block.wl_mode(block.wordline_of(page))
        if mode == CONVENTIONAL_WL:
            assert op.senses == ftl.coding.senses(op.bit)
        else:
            assert op.senses <= ftl.coding.senses(op.bit)
            assert op.from_ida


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["write", "read", "refresh"]),
            st.integers(0, LPN_SPACE - 1),
        ),
        min_size=10,
        max_size=120,
    ),
    mode=st.sampled_from([RefreshMode.BASELINE, RefreshMode.IDA]),
    error_rate=st.sampled_from([0.0, 0.2, 1.0]),
)
def test_random_operation_sequences_preserve_invariants(ops, mode, error_rate):
    ftl = _build_ftl(mode, error_rate)
    live: set[int] = set()
    # Aged initial fill so refresh ticks have work to do.
    for lpn in range(LPN_SPACE):
        ftl.write_untimed(lpn, -1000.0)
        live.add(lpn)
    clock = 0.0
    for kind, lpn in ops:
        clock += 10.0
        if kind == "write":
            ftl.host_write(lpn, clock)
            live.add(lpn)
        elif kind == "read":
            ftl.host_read(lpn, clock)
            live.add(lpn)  # unmapped reads auto-map
        else:
            ftl.check_refresh(clock + 1000.0)
    _check_invariants(ftl, live)


@settings(max_examples=10, deadline=None)
@given(cycles=st.integers(min_value=1, max_value=5))
def test_repeated_ida_refresh_cycles_never_lose_data(cycles):
    ftl = _build_ftl(RefreshMode.IDA, error_rate=0.3)
    live = set(range(LPN_SPACE))
    for lpn in live:
        ftl.write_untimed(lpn, -1000.0)
    for cycle in range(cycles):
        ftl.check_refresh(1000.0 * (cycle + 1))
    _check_invariants(ftl, live)
