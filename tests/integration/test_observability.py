"""End-to-end acceptance tests for the observability layer.

The two contract points from the telemetry design:

1. **Span accounting** — for every traced host read, the critical page's
   stage durations (queue wait + sense + transfer + ECC) plus the host
   overhead sum exactly to the reported response time.
2. **Zero perturbation** — tracing and interval collection are passive:
   a traced/collected run produces identical ``SimMetrics`` to a bare
   run of the same (system, workload, scale, seed).
"""

from __future__ import annotations

import pytest

from repro.experiments import RunScale, ida
from repro.experiments.runner import run_workload
from repro.obs import IntervalCollector, MemorySink, NullTracer, Tracer
from repro.workloads import workload

SEED = 11
TOL = 1e-6


def traced_run(tracer=None, collector=None):
    return run_workload(
        ida(0.2),
        workload("usr_1"),
        RunScale.tiny(),
        seed=SEED,
        tracer=tracer,
        collector=collector,
    )


@pytest.fixture(scope="module")
def trace_and_result():
    sink = MemorySink()
    result = traced_run(tracer=Tracer(sink))
    return sink, result


def metrics_fingerprint(metrics) -> tuple:
    """Every observable field of SimMetrics, exactly (no rounding)."""
    return (
        metrics.read_response._samples,
        metrics.write_response._samples,
        metrics.read_mix.by_type,
        metrics.read_mix.csb_with_invalid_lsb,
        metrics.read_mix.msb_with_invalid_lower,
        metrics.read_mix.ida_fast_reads,
        metrics.read_mix.total,
        metrics.bytes_read,
        metrics.bytes_written,
        metrics.start_us,
        metrics.end_us,
        metrics.gc_invocations,
        metrics.gc_page_moves,
        metrics.block_erases,
        metrics.refresh_invocations,
        metrics.refresh_page_moves,
        metrics.refresh_adjusted_wordlines,
        metrics.refresh_reprogrammed_pages,
        metrics.refresh_corrupted_pages,
        metrics.refresh_extra_reads,
        metrics.read_retries,
        metrics.unmapped_reads,
    )


class TestSpanAccounting:
    def test_trace_has_header_and_run_markers(self, trace_and_result):
        sink, _ = trace_and_result
        events = list(sink.events)
        assert events[0]["kind"] == "trace_header"
        assert len(sink.by_kind("run_start")) == 1
        assert len(sink.by_kind("run_end")) == 1
        assert events[-1]["kind"] == "run_end"

    def test_every_read_span_sums_to_its_response_time(self, trace_and_result):
        sink, _ = trace_and_result
        spans = sink.by_kind("read_span")
        assert spans, "traced run produced no read spans"
        for span in spans:
            critical = span["critical"]
            stage_sum = (
                critical["queue_wait_us"]
                + critical["sense_us"]
                + critical["transfer_us"]
                + critical["ecc_us"]
                + critical["program_us"]
                + critical["host_overhead_us"]
            )
            assert stage_sum == pytest.approx(span["response_us"], abs=TOL), (
                f"request {span['request_id']}: stages sum to {stage_sum}, "
                f"response is {span['response_us']}"
            )

    def test_every_write_span_sums_to_its_response_time(self, trace_and_result):
        sink, _ = trace_and_result
        spans = sink.by_kind("write_span")
        assert spans, "traced run produced no write spans"
        for span in spans:
            critical = span["critical"]
            stage_sum = (
                critical["queue_wait_us"]
                + critical["sense_us"]
                + critical["transfer_us"]
                + critical["ecc_us"]
                + critical["program_us"]
                + critical["host_overhead_us"]
            )
            assert stage_sum == pytest.approx(span["response_us"], abs=TOL)

    def test_page_stage_records_tile_their_pipeline(self, trace_and_result):
        # Open-loop dispatch issues every page op at the request's arrival
        # time, so each page's stages tile [arrival, that page's end].
        sink, _ = trace_and_result
        for span in sink.by_kind("read_span"):
            for page in span["stages"]:
                pipeline = (
                    page["queue_wait_us"] + page["sense_us"]
                    + page["transfer_us"] + page["ecc_us"]
                    + page["program_us"]
                )
                assert page["end_us"] - span["arrival_us"] == pytest.approx(
                    pipeline, abs=TOL
                )

    def test_span_responses_match_recorded_latencies(self, trace_and_result):
        sink, result = trace_and_result
        span_responses = sorted(
            e["response_us"] for e in sink.by_kind("read_span")
        )
        samples = sorted(result.metrics.read_response._samples)
        assert len(span_responses) == len(samples)
        assert span_responses == pytest.approx(samples, abs=TOL)

    def test_background_events_traced(self, trace_and_result):
        sink, result = trace_and_result
        # The tiny IDA run performs refreshes; each leaves a refresh event
        # and its wordline adjustments leave ida_adjust events.
        refreshes = sink.by_kind("refresh")
        assert len(refreshes) == result.metrics.refresh_invocations
        adjusts = sink.by_kind("ida_adjust")
        assert len(adjusts) == result.metrics.refresh_adjusted_wordlines


class TestZeroPerturbation:
    def test_null_tracer_and_traced_runs_match_bare_run(self):
        bare = traced_run()
        null = traced_run(tracer=NullTracer())
        traced = traced_run(tracer=Tracer(MemorySink()))
        reference = metrics_fingerprint(bare.metrics)
        assert metrics_fingerprint(null.metrics) == reference
        assert metrics_fingerprint(traced.metrics) == reference

    def test_collected_run_matches_bare_run(self):
        bare = traced_run()
        collector = IntervalCollector(10_000.0)
        collected = traced_run(collector=collector)
        assert metrics_fingerprint(collected.metrics) == metrics_fingerprint(
            bare.metrics
        )
        assert collector.snapshots, "collector sampled nothing"
        # The series accounts for every completed request exactly once.
        assert sum(s.reads_completed for s in collector.snapshots) == (
            collected.metrics.read_response.count
        )
        assert sum(s.writes_completed for s in collector.snapshots) == (
            collected.metrics.write_response.count
        )

    def test_intervals_are_contiguous_and_bounded(self):
        collector = IntervalCollector(10_000.0)
        result = traced_run(collector=collector)
        snaps = collector.snapshots
        for a, b in zip(snaps, snaps[1:]):
            assert a.end_us == b.start_us
        assert snaps[-1].end_us <= result.metrics.end_us + TOL
        for snap in snaps:
            assert 0.0 <= snap.die_utilisation <= 1.0
            assert 0.0 <= snap.channel_utilisation <= 1.0
