"""Tests for the cell-exact chip (repro.flash.chip)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.chip import CellChip


class TestCellChip:
    def test_program_read_roundtrip(self, tlc, rng):
        chip = CellChip(tlc, num_blocks=2, wordlines_per_block=4, cells_per_wordline=32)
        pages = chip.random_pages(rng)
        chip.program_wordline(0, 0, pages)
        for bit in range(3):
            np.testing.assert_array_equal(chip.read_page(0, 0, bit), pages[bit])

    def test_adjust_then_read(self, tlc, rng):
        chip = CellChip(tlc, cells_per_wordline=16)
        pages = chip.random_pages(rng)
        chip.program_wordline(1, 2, pages)
        assert chip.page_senses(1, 2, 2) == 4
        chip.adjust_wordline(1, 2, (1, 2))
        assert chip.page_senses(1, 2, 2) == 2
        np.testing.assert_array_equal(chip.read_page(1, 2, 2), pages[2])
        np.testing.assert_array_equal(chip.read_page(1, 2, 1), pages[1])

    def test_erase_block(self, tlc, rng):
        chip = CellChip(tlc, cells_per_wordline=8)
        chip.program_wordline(0, 0, chip.random_pages(rng))
        chip.adjust_wordline(0, 0, (2,))
        chip.erase_block(0)
        # After erase the wordline is programmable again.
        chip.program_wordline(0, 0, chip.random_pages(rng))

    def test_rejects_bad_dimensions(self, tlc):
        with pytest.raises(ValueError):
            CellChip(tlc, num_blocks=0)
