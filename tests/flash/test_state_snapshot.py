"""DeviceState.snapshot()/restore(): roundtrip, validation, view rules."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.flash.state import DeviceState, DeviceStateSnapshot


def _make_state(num_blocks: int = 4) -> DeviceState:
    return DeviceState(num_blocks, pages_per_block=6, bits_per_cell=3)


def _scribble(state: DeviceState) -> None:
    """Mutate every column so the roundtrip actually moves bytes."""
    state.page_state[0] = 1
    state.page_state[5] = 2
    state.wl_mode[1] = 0x03
    state.wl_read_count[2] = 77
    state.next_page[0] = 4
    state.valid_count[0] = 3
    state.erase_count[3] = 9
    state.programmed_at_us[1] = 123.5
    state.flags[2] = 0x05


def _columns_equal(a: DeviceState, b: DeviceState) -> bool:
    return a.snapshot().columns == b.snapshot().columns


class TestRoundtrip:
    def test_restore_reproduces_every_column(self):
        source = _make_state()
        _scribble(source)
        snap = source.snapshot()

        target = _make_state()
        assert not _columns_equal(source, target)
        target.restore(snap)
        assert _columns_equal(source, target)

    def test_snapshot_is_a_copy_not_a_view(self):
        state = _make_state()
        snap = state.snapshot()
        before = snap.columns["page_state"]
        state.page_state[0] = 9
        assert snap.columns["page_state"] == before

    def test_snapshot_pickles(self):
        state = _make_state()
        _scribble(state)
        snap = state.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert isinstance(clone, DeviceStateSnapshot)
        assert clone.columns == snap.columns
        assert clone.nbytes() == snap.nbytes()

    def test_nbytes_matches_memory_bytes(self):
        state = _make_state()
        assert state.snapshot().nbytes() == state.memory_bytes()


class TestValidation:
    def test_geometry_mismatch_rejected_untouched(self):
        snap = _make_state(num_blocks=5).snapshot()
        target = _make_state(num_blocks=4)
        pristine = target.snapshot().columns
        with pytest.raises(ValueError, match="geometry"):
            target.restore(snap)
        assert target.snapshot().columns == pristine

    def test_missing_column_rejected_untouched(self):
        snap = _make_state().snapshot()
        del snap.columns["flags"]
        target = _make_state()
        pristine = target.snapshot().columns
        with pytest.raises(ValueError, match="missing column"):
            target.restore(snap)
        assert target.snapshot().columns == pristine

    def test_truncated_column_rejected_before_any_write(self):
        source = _make_state()
        _scribble(source)
        snap = source.snapshot()
        # ``flags`` is validated last; truncating it must still leave
        # *every* column untouched — validation runs before any write.
        snap.columns["flags"] = snap.columns["flags"][:-1]
        target = _make_state()
        pristine = target.snapshot().columns
        with pytest.raises(ValueError, match="flags"):
            target.restore(snap)
        assert target.snapshot().columns == pristine

    def test_buffers_never_resize_on_bad_restore(self):
        # A wrong-length bytearray slice-assign would silently resize the
        # buffer and orphan every numpy view; the length check prevents
        # the write from ever happening.
        state = _make_state()
        snap = state.snapshot()
        snap.columns["page_state"] = snap.columns["page_state"] + b"\x00"
        with pytest.raises(ValueError, match="page_state"):
            state.restore(snap)
        assert len(state.page_state) == state.num_pages
        assert state.page_state_np.shape == (state.num_pages,)


class TestViewCoherence:
    def test_views_reflect_restored_bytes(self):
        source = _make_state()
        _scribble(source)
        snap = source.snapshot()
        target = _make_state()
        target.restore(snap)
        assert target.page_state_np[5] == 2
        assert target.wl_read_count_np[2] == 77
        assert target.erase_count_np[3] == 9
        assert target.flags_np[2] == 0x05
        assert target.programmed_at_us_np[1] == 123.5

    def test_views_stay_live_after_restore(self):
        # Post-restore, scalar mutations must remain visible through the
        # numpy views (and vice versa) — the buffers were reused in place.
        state = _make_state()
        state.restore(_make_state().snapshot())
        state.page_state[3] = 2
        assert state.page_state_np[3] == 2
        state.valid_count_np[1] = 42
        assert state.valid_count[1] == 42

    def test_pre_restore_view_references_see_restored_data(self):
        # The batch backend caches ``state.<col>_np`` arrays; since
        # restore writes into the same buffers, even a stale reference
        # observes the restored bytes.
        state = _make_state()
        held = state.page_state_np
        source = _make_state()
        source.page_state[0] = 2
        state.restore(source.snapshot())
        assert held[0] == 2
        assert np.shares_memory(held, state.page_state_np)
