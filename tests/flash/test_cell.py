"""Tests for the cell-exact wordline model (repro.flash.cell)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import conventional_qlc, conventional_tlc
from repro.flash.cell import ERASED_STATE, WordlineCells


def _random_pages(rng, bits, size):
    return [rng.integers(0, 2, size, dtype=np.int8) for _ in range(bits)]


class TestProgramRead:
    def test_roundtrip_all_page_types(self, tlc, rng):
        cells = WordlineCells(tlc, 32)
        pages = _random_pages(rng, 3, 32)
        cells.program(pages)
        for bit in range(3):
            np.testing.assert_array_equal(cells.read_page(bit), pages[bit])

    def test_senses_match_coding(self, tlc, rng):
        cells = WordlineCells(tlc, 16)
        cells.program(_random_pages(rng, 3, 16))
        assert [cells.senses(b) for b in range(3)] == [1, 2, 4]

    def test_erased_cells_read_all_ones(self, tlc):
        cells = WordlineCells(tlc, 8)
        for bit in range(3):
            assert (cells.read_page(bit) == 1).all()

    def test_cannot_program_twice(self, tlc, rng):
        cells = WordlineCells(tlc, 8)
        pages = _random_pages(rng, 3, 8)
        # Ensure at least one non-erased cell.
        pages[0][0] = 0
        cells.program(pages)
        with pytest.raises(RuntimeError, match="non-erased"):
            cells.program(pages)

    def test_wrong_page_count_rejected(self, tlc, rng):
        cells = WordlineCells(tlc, 8)
        with pytest.raises(ValueError, match="need 3 pages"):
            cells.program(_random_pages(rng, 2, 8))

    def test_wrong_page_length_rejected(self, tlc, rng):
        cells = WordlineCells(tlc, 8)
        with pytest.raises(ValueError, match="length"):
            cells.program(_random_pages(rng, 3, 9))

    def test_zero_size_rejected(self, tlc):
        with pytest.raises(ValueError):
            WordlineCells(tlc, 0)


class TestIdaAdjustment:
    def test_adjust_reduces_senses(self, tlc, rng):
        cells = WordlineCells(tlc, 32)
        cells.program(_random_pages(rng, 3, 32))
        cells.apply_ida((1, 2))
        assert cells.senses(1) == 1
        assert cells.senses(2) == 2

    def test_adjust_preserves_surviving_data(self, tlc, rng):
        cells = WordlineCells(tlc, 64)
        pages = _random_pages(rng, 3, 64)
        cells.program(pages)
        cells.apply_ida((1, 2))
        np.testing.assert_array_equal(cells.read_page(1), pages[1])
        np.testing.assert_array_equal(cells.read_page(2), pages[2])

    def test_adjust_moves_states_rightward(self, tlc, rng):
        cells = WordlineCells(tlc, 64)
        cells.program(_random_pages(rng, 3, 64))
        before = cells.states.copy()
        cells.apply_ida((2,))
        assert (cells.states >= before).all()

    def test_cannot_program_after_adjust(self, tlc, rng):
        cells = WordlineCells(tlc, 8)
        cells.program(_random_pages(rng, 3, 8))
        cells.apply_ida((1, 2))
        with pytest.raises(RuntimeError, match="IDA wordline"):
            cells.program(_random_pages(rng, 3, 8))

    def test_erase_resets_everything(self, tlc, rng):
        cells = WordlineCells(tlc, 8)
        cells.program(_random_pages(rng, 3, 8))
        cells.apply_ida((1, 2))
        cells.erase()
        assert (cells.states == ERASED_STATE).all()
        assert cells.transform is None
        assert cells.senses(0) == 1  # back to conventional boundaries

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_adjust_preserves_data_property(self, data):
        # For any programmed content and any valid-bit suffix, surviving
        # pages read back identically after the voltage adjustment.
        coding = conventional_tlc()
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        start = data.draw(st.integers(min_value=1, max_value=2))
        cells = WordlineCells(coding, 48)
        pages = _random_pages(rng, 3, 48)
        cells.program(pages)
        valid = tuple(range(start, 3))
        cells.apply_ida(valid)
        for bit in valid:
            np.testing.assert_array_equal(cells.read_page(bit), pages[bit])


class TestQlcCells:
    def test_fig6_data_preservation(self, rng):
        coding = conventional_qlc()
        cells = WordlineCells(coding, 32)
        pages = _random_pages(rng, 4, 32)
        cells.program(pages)
        cells.apply_ida((2, 3))
        np.testing.assert_array_equal(cells.read_page(2), pages[2])
        np.testing.assert_array_equal(cells.read_page(3), pages[3])
        assert cells.senses(3) == 2
        assert cells.senses(2) == 1
