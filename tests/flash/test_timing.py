"""Tests for the timing spec (repro.flash.timing)."""

from __future__ import annotations

import pytest

from repro.core import IdaTransform, conventional_tlc
from repro.flash.timing import TimingSpec


class TestTableTwo:
    def test_defaults(self):
        spec = TimingSpec.tlc_table2()
        assert spec.read_us(1) == 50.0
        assert spec.read_us(2) == 100.0
        assert spec.read_us(4) == 150.0
        assert spec.program_us == 2300.0
        assert spec.erase_us == 3000.0
        assert spec.transfer_us == 48.0
        assert spec.ecc_decode_us == 20.0

    def test_adjust_is_conservative_one_program(self):
        # Sec. III-B: "we conservatively set the voltage adjustment
        # latency to the MSB write latency".
        assert TimingSpec.tlc_table2().adjust_us() == 2300.0

    def test_adjust_fraction_knob(self):
        spec = TimingSpec(adjust_program_fraction=0.5)
        assert spec.adjust_us() == 1150.0


class TestDeviceVariants:
    def test_mlc_spec(self):
        spec = TimingSpec.mlc_spec()
        assert spec.read_us(1) == 65.0
        assert spec.read_us(2) == 115.0

    def test_qlc_spec_has_four_levels(self):
        spec = TimingSpec.qlc_spec()
        assert spec.read_us(8) > spec.read_us(4) > spec.read_us(2) > spec.read_us(1)

    def test_with_dtr(self):
        spec = TimingSpec.tlc_table2().with_dtr(70.0)
        assert spec.read_us(1) == 50.0
        assert spec.read_us(4) == 190.0
        assert spec.program_us == 2300.0


class TestCodingIntegration:
    def test_page_read_us(self):
        spec = TimingSpec.tlc_table2()
        tlc = conventional_tlc()
        assert spec.page_read_us(tlc, 2) == 150.0

    def test_ida_read_us(self):
        spec = TimingSpec.tlc_table2()
        transform = IdaTransform(conventional_tlc(), (1, 2))
        assert spec.ida_read_us(transform, 2) == 100.0


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"program_us": 0},
            {"erase_us": -1},
            {"transfer_us": 0},
            {"ecc_decode_us": 0},
            {"adjust_program_fraction": 0},
            {"adjust_program_fraction": 2.5},
            {"host_overhead_us": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TimingSpec(**kwargs)
