"""Tests for the threshold-voltage model (repro.flash.voltage)."""

from __future__ import annotations

import pytest

from repro.flash.voltage import StateDistribution, VoltageModel


class TestStateDistribution:
    def test_symmetry_at_mean(self):
        dist = StateDistribution(1.0, 0.1)
        assert dist.prob_above(1.0) == pytest.approx(0.5)
        assert dist.prob_below(1.0) == pytest.approx(0.5)

    def test_tails_decay(self):
        dist = StateDistribution(0.0, 0.1)
        assert dist.prob_above(0.5) < 1e-4
        assert dist.prob_below(-0.5) < 1e-4

    def test_shifted(self):
        dist = StateDistribution(0.0, 0.1).shifted(0.3, widen=0.05)
        assert dist.mean_v == pytest.approx(0.3)
        assert dist.sigma_v == pytest.approx(0.15)

    def test_rejects_zero_sigma(self):
        with pytest.raises(ValueError):
            StateDistribution(0.0, 0.0)


class TestVoltageModel:
    @pytest.fixture
    def model(self):
        return VoltageModel()

    def test_state_means_ascend(self, model):
        means = [model.state_mean_v(s) for s in range(8)]
        assert means == sorted(means)
        assert means[0] == model.erased_mean_v
        assert means[-1] == model.top_mean_v

    def test_read_voltages_between_neighbours(self, model):
        for boundary in range(1, 8):
            v = model.read_voltage(boundary)
            assert model.state_mean_v(boundary - 1) < v < model.state_mean_v(boundary)

    def test_fresh_rber_is_tiny(self, model):
        assert model.raw_bit_error_rate(retention_days=0.0) < 1e-4

    def test_rber_grows_with_retention(self, model):
        values = [model.raw_bit_error_rate(d) for d in (0, 30, 90, 365)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_retention_shifts_programmed_states_down(self, model):
        fresh = model.distribution(7, 0.0)
        aged = model.distribution(7, 90.0)
        assert aged.mean_v < fresh.mean_v
        assert aged.sigma_v > fresh.sigma_v

    def test_erased_state_does_not_drift(self, model):
        fresh = model.distribution(0, 0.0)
        aged = model.distribution(0, 365.0)
        assert aged.mean_v == fresh.mean_v

    def test_higher_states_drift_faster(self, model):
        drift_low = model.state_mean_v(1) - model.distribution(1, 90.0).mean_v
        drift_high = model.state_mean_v(7) - model.distribution(7, 90.0).mean_v
        assert drift_high > drift_low

    def test_misread_probability_bounds(self, model):
        for state in range(8):
            for boundary in (state, state + 1):
                if 1 <= boundary < 8:
                    p = model.misread_probability(state, boundary, 30.0)
                    assert 0.0 <= p <= 1.0

    def test_validation(self, model):
        with pytest.raises(IndexError):
            model.state_mean_v(8)
        with pytest.raises(IndexError):
            model.read_voltage(0)
        with pytest.raises(ValueError):
            model.distribution(1, -1.0)
        with pytest.raises(ValueError):
            VoltageModel(num_states=1)
        with pytest.raises(ValueError):
            VoltageModel(erased_mean_v=5.0, top_mean_v=4.0)


class TestIdaMergedMargins:
    def test_merged_model_margins_not_degraded(self):
        # After the Fig. 5 merge (states S5..S8 = indices 4..7 survive),
        # the kept states are adjacent so per-boundary margins equal the
        # originals: the worst-case (top-state) misread probability is
        # unchanged — IDA-coded cells are no less readable.
        full = VoltageModel()
        merged = full.merged((4, 5, 6, 7))
        assert merged.num_states == 4
        worst_full = full.misread_probability(7, 7, 90.0)
        worst_merged = merged.misread_probability(3, 3, 90.0)
        assert worst_merged == pytest.approx(worst_full, rel=0.05)

    def test_merged_preserves_state_spacing(self):
        full = VoltageModel()
        merged = full.merged((4, 5, 6, 7))
        full_step = full.state_mean_v(7) - full.state_mean_v(6)
        merged_step = merged.state_mean_v(3) - merged.state_mean_v(2)
        assert merged_step == pytest.approx(full_step)

    def test_merged_rejects_single_state(self):
        with pytest.raises(ValueError):
            VoltageModel().merged((7,))
