"""Tests for the error models (repro.flash.errors)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.errors import AdjustDisturbModel, RberModel, ReadRetryModel


class TestAdjustDisturb:
    def test_zero_rate_corrupts_nothing(self, rng):
        model = AdjustDisturbModel(error_rate=0.0)
        assert model.corrupted_pages(rng, list(range(100))) == []

    def test_full_rate_corrupts_everything(self, rng):
        model = AdjustDisturbModel(error_rate=1.0)
        pages = list(range(50))
        assert model.corrupted_pages(rng, pages) == pages

    def test_empty_input(self, rng):
        assert AdjustDisturbModel(0.5).corrupted_pages(rng, []) == []

    def test_rate_is_respected_statistically(self):
        rng = np.random.default_rng(7)
        model = AdjustDisturbModel(error_rate=0.2)
        pages = list(range(20_000))
        corrupted = model.corrupted_pages(rng, pages)
        assert 0.18 < len(corrupted) / len(pages) < 0.22

    def test_subset_of_input(self, rng):
        model = AdjustDisturbModel(error_rate=0.5)
        pages = list(range(200))
        assert set(model.corrupted_pages(rng, pages)) <= set(pages)

    @pytest.mark.parametrize("rate", [-0.1, 1.1])
    def test_rejects_bad_rates(self, rate):
        with pytest.raises(ValueError):
            AdjustDisturbModel(error_rate=rate)


class TestRberModel:
    def test_fresh_block_is_base(self):
        model = RberModel()
        assert model.rber(0, 0.0) == pytest.approx(model.base_rber)

    def test_monotone_in_wear(self):
        model = RberModel()
        values = [model.rber(pe) for pe in (0, 500, 1500, 3000)]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_monotone_in_retention(self):
        model = RberModel()
        assert model.rber(100, 30.0) > model.rber(100, 1.0)

    def test_wear_saturates_at_rated_cycles(self):
        model = RberModel(rated_pe_cycles=1000)
        assert model.rber(1000) == pytest.approx(model.rber(5000))

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValueError):
            RberModel().rber(-1)
        with pytest.raises(ValueError):
            RberModel().rber(0, -1.0)

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            RberModel(base_rber=0.0)
        with pytest.raises(ValueError):
            RberModel(rated_pe_cycles=0)
        with pytest.raises(ValueError, match="wear_exponent"):
            RberModel(wear_exponent=-0.1)
        with pytest.raises(ValueError, match="retention_slope"):
            RberModel(retention_slope=-0.01)

    def test_zero_growth_boundaries_are_valid(self):
        # A flat curve (no wear growth, no retention growth) is a legal
        # calibration, not a config error.
        model = RberModel(wear_exponent=0.0, retention_slope=0.0)
        assert model.rber(3000, 365.0) == pytest.approx(model.base_rber)


class TestReadRetryModel:
    def test_zero_prob_never_retries(self, rng):
        model = ReadRetryModel(fail_prob=0.0)
        assert all(model.sample_retries(rng) == 0 for _ in range(100))
        assert model.expected_retries() == 0.0

    def test_retries_bounded_by_max(self):
        rng = np.random.default_rng(3)
        model = ReadRetryModel(fail_prob=0.9, max_retries=4)
        samples = [model.sample_retries(rng) for _ in range(500)]
        assert max(samples) <= 4

    def test_expected_matches_sampled_mean(self):
        rng = np.random.default_rng(5)
        model = ReadRetryModel(fail_prob=0.45)
        samples = [model.sample_retries(rng) for _ in range(40_000)]
        assert np.mean(samples) == pytest.approx(model.expected_retries(), rel=0.05)

    def test_for_rber_below_threshold_is_rare(self):
        model = ReadRetryModel.for_rber(1e-4)
        assert model.fail_prob < 0.1

    def test_for_rber_above_threshold_is_common(self):
        model = ReadRetryModel.for_rber(5e-3)
        assert model.fail_prob > 0.8

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ReadRetryModel(fail_prob=1.0)
        with pytest.raises(ValueError):
            ReadRetryModel(fail_prob=-0.1)
        with pytest.raises(ValueError):
            ReadRetryModel(fail_prob=0.5, max_retries=-1)

    def test_for_rber_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="rber"):
            ReadRetryModel.for_rber(-1e-4)
        with pytest.raises(ValueError, match="threshold"):
            ReadRetryModel.for_rber(1e-3, threshold=0.0)
        with pytest.raises(ValueError, match="sharpness"):
            ReadRetryModel.for_rber(1e-3, sharpness=0.0)

    def test_for_rber_boundaries_are_valid(self):
        # rber == 0 is a fresh device; fail_prob lands near zero but the
        # model must construct.
        assert ReadRetryModel.for_rber(0.0).fail_prob < 0.1
        assert 0.0 <= ReadRetryModel.for_rber(1.0).fail_prob <= 0.95

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.0, max_value=0.9))
    def test_expected_retries_monotone_in_fail_prob(self, p):
        lower = ReadRetryModel(fail_prob=p).expected_retries()
        higher = ReadRetryModel(fail_prob=min(0.95, p + 0.05)).expected_retries()
        assert higher >= lower
