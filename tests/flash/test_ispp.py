"""Tests for the ISPP latency model (repro.flash.ispp)."""

from __future__ import annotations

import pytest

from repro.core import IdaTransform, conventional_tlc
from repro.flash.ispp import IsppModel
from repro.flash.timing import TimingSpec


@pytest.fixture
def model():
    return IsppModel(TimingSpec.tlc_table2())


class TestLoops:
    def test_full_range_is_one_program(self, model):
        assert model.loops_for_distance(7, 8) == pytest.approx(1.0)

    def test_zero_distance_is_free(self, model):
        assert model.loops_for_distance(0, 8) == 0.0

    def test_rejects_out_of_range(self, model):
        with pytest.raises(ValueError):
            model.loops_for_distance(8, 8)
        with pytest.raises(ValueError):
            model.loops_for_distance(-1, 8)
        with pytest.raises(ValueError):
            model.loops_for_distance(1, 1)


class TestAdjustLatency:
    def test_conservative_is_one_program(self, model):
        # The paper's conservative evaluation choice.
        assert model.conservative_adjust_us() == 2300.0

    def test_proportional_is_about_half(self, model):
        # Sec. III-B: the two-phase schedule halves the swept range.
        transform = IdaTransform(conventional_tlc(), (1, 2))
        proportional = model.proportional_adjust_us(transform)
        assert proportional <= model.conservative_adjust_us() * 0.55
        assert proportional > 0

    def test_proportional_below_conservative_for_msb_only(self, model):
        transform = IdaTransform(conventional_tlc(), (2,))
        assert model.proportional_adjust_us(transform) < model.conservative_adjust_us()
