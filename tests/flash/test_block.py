"""Tests for block bookkeeping (repro.flash.block)."""

from __future__ import annotations

import pytest

from repro.flash.block import CONVENTIONAL_WL, Block, PageState, SenseTable


@pytest.fixture
def block():
    return Block(index=0, pages_per_block=192, bits_per_cell=3)


@pytest.fixture
def table(tlc):
    return SenseTable(tlc)


class TestSenseTable:
    def test_conventional_counts(self, table):
        assert table.senses(CONVENTIONAL_WL, 0) == 1
        assert table.senses(CONVENTIONAL_WL, 1) == 2
        assert table.senses(CONVENTIONAL_WL, 2) == 4

    def test_ida_mode_keeping_csb_msb(self, table):
        assert table.senses(1, 1) == 1
        assert table.senses(1, 2) == 2

    def test_ida_mode_keeping_msb_only(self, table):
        assert table.senses(2, 2) == 1

    def test_evicted_bit_raises(self, table):
        with pytest.raises(KeyError):
            table.senses(1, 0)

    def test_transform_for(self, table):
        assert table.transform_for(1).valid_bits == (1, 2)
        assert table.transform_for(2).valid_bits == (2,)


class TestLifecycle:
    def test_sequential_program(self, block):
        assert block.program_next(now_us=5.0) == 0
        assert block.program_next(now_us=6.0) == 1
        assert block.valid_count == 2
        assert block.programmed_at_us == 5.0  # first program stamps the age

    def test_fill_and_overflow(self, block):
        for _ in range(192):
            block.program_next(0.0)
        assert block.is_full
        assert block.free_pages == 0
        with pytest.raises(RuntimeError, match="full"):
            block.program_next(0.0)

    def test_invalidate(self, block):
        page = block.program_next(0.0)
        block.invalidate(page)
        assert block.state_of(page) is PageState.INVALID
        assert block.valid_count == 0
        assert block.invalid_count == 1

    def test_invalidate_twice_raises(self, block):
        page = block.program_next(0.0)
        block.invalidate(page)
        with pytest.raises(RuntimeError, match="not valid"):
            block.invalidate(page)

    def test_invalidate_free_page_raises(self, block):
        with pytest.raises(RuntimeError, match="not valid"):
            block.invalidate(100)

    def test_erase_resets(self, block):
        for _ in range(6):
            block.program_next(0.0)
        for page in range(6):
            block.invalidate(page)
        block.set_wordline_ida(0, 1)
        block.erase()
        assert block.erase_count == 1
        assert block.valid_count == 0
        assert block.next_page == 0
        assert not block.is_ida
        assert block.programmed_at_us is None
        assert block.wl_mode(0) == CONVENTIONAL_WL

    def test_erase_with_valid_pages_raises(self, block):
        block.program_next(0.0)
        with pytest.raises(RuntimeError, match="valid pages"):
            block.erase()


class TestWordlines:
    def test_wordline_geometry(self, block):
        assert block.wordlines == 64
        assert block.wordline_of(5) == 1
        assert block.bit_of(5) == 2

    def test_wordline_validity(self, block):
        for _ in range(6):
            block.program_next(0.0)
        block.invalidate(0)  # WL0 LSB
        block.invalidate(4)  # WL1 CSB
        assert block.wordline_validity(0) == (False, True, True)
        assert block.wordline_validity(1) == (True, False, True)
        assert block.wordline_validity(2) == (False, False, False)

    def test_valid_pages(self, block):
        for _ in range(4):
            block.program_next(0.0)
        block.invalidate(2)
        assert block.valid_pages() == [0, 1, 3]

    def test_set_wordline_ida(self, block, table):
        for _ in range(3):
            block.program_next(0.0)
        block.set_wordline_ida(0, 1)
        assert block.is_ida
        assert block.wl_mode(0) == 1
        assert block.senses_for(table, 1) == 1  # CSB in IDA mode
        assert block.senses_for(table, 2) == 2  # MSB in IDA mode
        assert block.senses_for(table, 3) == 1  # WL1 still conventional LSB

    def test_set_wordline_ida_validates_start(self, block):
        with pytest.raises(ValueError):
            block.set_wordline_ida(0, 0)
        with pytest.raises(ValueError):
            block.set_wordline_ida(0, 3)

    def test_ida_block_rejects_programs(self, block):
        block.program_next(0.0)
        block.set_wordline_ida(0, 2)
        with pytest.raises(RuntimeError, match="IDA-coded"):
            block.program_next(0.0)

    def test_senses_for_conventional(self, block, table):
        for _ in range(3):
            block.program_next(0.0)
        assert block.senses_for(table, 0) == 1
        assert block.senses_for(table, 1) == 2
        assert block.senses_for(table, 2) == 4


class TestValidation:
    def test_rejects_indivisible_pages(self):
        with pytest.raises(ValueError):
            Block(index=0, pages_per_block=100, bits_per_cell=3)
