"""Tests for the per-plane block pool (repro.flash.plane)."""

from __future__ import annotations

import pytest

from repro.flash.block import Block
from repro.flash.plane import PlanePool


def _pool(num_blocks=4, pages=6):
    blocks = [Block(index=i, pages_per_block=pages, bits_per_cell=3) for i in range(num_blocks)]
    return PlanePool(plane_index=0, blocks=blocks)


class TestAllocation:
    def test_opens_first_free_block(self):
        pool = _pool()
        block = pool.active_block(0.0)
        assert block.index == 0
        assert pool.free_count == 3

    def test_reuses_active_until_full(self):
        pool = _pool(pages=6)
        first = pool.active_block(0.0)
        for _ in range(6):
            block = pool.active_block(0.0)
            assert block is first
            block.program_next(0.0)
        second = pool.active_block(0.0)
        assert second is not first
        assert 0 in pool.used

    def test_retire_active_moves_full_block(self):
        pool = _pool(pages=3)
        block = pool.active_block(0.0)
        for _ in range(3):
            block.program_next(0.0)
        pool.retire_active()
        assert pool.active is None
        assert 0 in pool.used

    def test_retire_ignores_partial_block(self):
        pool = _pool()
        pool.active_block(0.0).program_next(0.0)
        pool.retire_active()
        assert pool.active == 0

    def test_exhaustion_raises(self):
        pool = _pool(num_blocks=1, pages=3)
        block = pool.active_block(0.0)
        for _ in range(3):
            block.program_next(0.0)
        with pytest.raises(RuntimeError, match="no free blocks"):
            pool.active_block(0.0)


class TestRelease:
    def test_release_returns_block_to_free_list(self):
        pool = _pool(pages=3)
        block = pool.active_block(0.0)
        for _ in range(3):
            block.program_next(0.0)
        pool.retire_active()
        for page in range(3):
            block.invalidate(page)
        block.erase()
        pool.release(0)
        assert pool.free_count == 4
        assert 0 not in pool.used

    def test_release_with_valid_data_raises(self):
        pool = _pool(pages=3)
        block = pool.active_block(0.0)
        for _ in range(3):
            block.program_next(0.0)
        pool.retire_active()
        with pytest.raises(RuntimeError, match="valid data"):
            pool.release(0)


class TestQueries:
    def test_used_blocks_includes_active(self):
        pool = _pool(pages=3)
        block = pool.active_block(0.0)
        block.program_next(0.0)
        assert [b.index for b in pool.used_blocks()] == [0]

    def test_gc_candidates_excludes_active(self):
        pool = _pool(pages=3)
        block = pool.active_block(0.0)
        for _ in range(3):
            block.program_next(0.0)
        pool.active_block(0.0)  # opens block 1, retires 0
        candidates = pool.gc_candidates()
        assert [b.index for b in candidates] == [0]

    def test_total_blocks(self):
        assert _pool(num_blocks=7).total_blocks == 7
