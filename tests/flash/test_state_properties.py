"""Property-based tests: DeviceState snapshot/restore is a true bijection.

The snapshot is the device half of the warm-state cache AND the thing a
power cut "freezes" — so the round-trip must hold for *every* geometry
and *every* column content, including the SPOR metadata columns (OOB
records, block summaries, ADJUST journal) added for power-loss recovery.
Hypothesis sweeps geometries and randomized column contents; the fixed
scribble in test_state_snapshot.py only covers one shape.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.flash.state import DeviceState, DeviceStateSnapshot

_geometries = st.tuples(
    st.integers(min_value=1, max_value=10),  # num_blocks
    st.integers(min_value=1, max_value=6),  # wordlines per block
    st.sampled_from([2, 3, 4]),  # bits per cell
)


def _make_state(geometry: tuple[int, int, int]) -> DeviceState:
    num_blocks, wordlines, bits = geometry
    return DeviceState(num_blocks, wordlines * bits, bits)


def _randomize(state: DeviceState, seed: int) -> None:
    """Fill every column with arbitrary in-range values."""
    rng = np.random.default_rng(seed)

    def fill_int(view, low, high):
        view[:] = rng.integers(low, high, size=view.size, dtype=view.dtype)

    fill_int(state.page_state_np, 0, 256)
    fill_int(state.wl_mode_np, 0, 256)
    fill_int(state.wl_read_count_np, 0, 1 << 40)
    fill_int(state.next_page_np, 0, state.pages_per_block + 1)
    fill_int(state.valid_count_np, 0, state.pages_per_block + 1)
    fill_int(state.erase_count_np, 0, 10_000)
    state.programmed_at_us_np[:] = rng.uniform(0, 1e9, state.num_blocks)
    fill_int(state.flags_np, 0, 256)
    # SPOR columns: OOB records (including the NO_LPN = -1 sentinel),
    # block summaries (NO_SUMMARY = -1), and the ADJUST journal.
    fill_int(state.oob_lpn_np, -1, 1 << 30)
    fill_int(state.oob_seq_np, 0, 1 << 40)
    fill_int(state.summary_seq_np, -1, 1 << 40)
    fill_int(state.summary_wl_mode_np, 0, 256)
    fill_int(state.journal_bit_np, 0, 8)
    fill_int(state.journal_kept_np, 0, 256)
    state.write_seq = int(rng.integers(0, 1 << 50))


@settings(max_examples=50, deadline=None)
@given(geometry=_geometries, seed=st.integers(0, 2**32 - 1))
def test_restore_reproduces_every_column(geometry, seed):
    source = _make_state(geometry)
    _randomize(source, seed)
    snap = source.snapshot()

    target = _make_state(geometry)
    target.restore(snap)
    assert target.snapshot().columns == snap.columns
    assert target.write_seq == source.write_seq


@settings(max_examples=50, deadline=None)
@given(geometry=_geometries, seed=st.integers(0, 2**32 - 1))
def test_snapshot_is_immune_to_later_mutation(geometry, seed):
    state = _make_state(geometry)
    _randomize(state, seed)
    snap = state.snapshot()
    frozen = dict(snap.columns)
    _randomize(state, seed ^ 0xFFFF_FFFF)
    assert snap.columns == frozen


@settings(max_examples=30, deadline=None)
@given(
    a=_geometries,
    b=_geometries,
    seed=st.integers(0, 2**32 - 1),
)
def test_geometry_mismatch_is_rejected_before_any_write(a, b, seed):
    source = _make_state(a)
    _randomize(source, seed)
    snap = source.snapshot()

    target = _make_state(b)
    before = target.snapshot().columns
    if a == b:
        target.restore(snap)
        assert target.snapshot().columns == snap.columns
    else:
        with pytest.raises(ValueError, match="geometry"):
            target.restore(snap)
        assert target.snapshot().columns == before


@settings(max_examples=30, deadline=None)
@given(
    geometry=_geometries,
    seed=st.integers(0, 2**32 - 1),
    column=st.sampled_from(
        ["page_state", "oob_lpn", "oob_seq", "journal_kept", "write_seq"]
    ),
)
def test_truncated_column_leaves_target_untouched(geometry, seed, column):
    source = _make_state(geometry)
    _randomize(source, seed)
    good = source.snapshot()
    bad = DeviceStateSnapshot(
        good.num_blocks,
        good.pages_per_block,
        good.bits_per_cell,
        {**good.columns, column: good.columns[column][:-1]},
    )

    target = _make_state(geometry)
    _randomize(target, seed ^ 0x5A5A)
    before = target.snapshot().columns
    before_seq = target.write_seq
    with pytest.raises(ValueError):
        target.restore(bad)
    assert target.snapshot().columns == before
    assert target.write_seq == before_seq
