"""Tests for the device geometry and address math (repro.flash.geometry)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.flash.geometry import Geometry


@pytest.fixture
def table2():
    """The paper's Table II geometry."""
    return Geometry()


class TestTableTwoNumbers:
    def test_derived_counts(self, table2):
        assert table2.total_chips == 16
        assert table2.total_dies == 32
        assert table2.total_planes == 64
        assert table2.total_blocks == 64 * 5472 == 350_208

    def test_capacity_is_half_terabyte(self, table2):
        # 350,208 blocks x 192 pages x 8 KiB ~ 512 GiB.
        assert 500 < table2.capacity_gib < 525

    def test_wordlines_per_block(self, table2):
        assert table2.wordlines_per_block == 64

    def test_page_size(self, table2):
        assert table2.page_size_bytes == 8192


class TestValidation:
    def test_rejects_indivisible_pages_per_block(self):
        with pytest.raises(ValueError, match="multiple"):
            Geometry(pages_per_block=190, bits_per_cell=3)

    def test_rejects_zero_dimension(self):
        with pytest.raises(ValueError):
            Geometry(channels=0)


class TestAddressMath:
    def test_plane_index_roundtrip(self, table2):
        for channel in range(table2.channels):
            for chip in range(table2.chips_per_channel):
                for die in range(table2.dies_per_chip):
                    for plane in range(table2.planes_per_die):
                        linear = table2.plane_index(channel, chip, die, plane)
                        assert table2.decompose_plane(linear) == (
                            channel,
                            chip,
                            die,
                            plane,
                        )

    def test_plane_indices_are_dense(self, table2):
        seen = {
            table2.plane_index(c, w, d, p)
            for c in range(table2.channels)
            for w in range(table2.chips_per_channel)
            for d in range(table2.dies_per_chip)
            for p in range(table2.planes_per_die)
        }
        assert seen == set(range(table2.total_planes))

    def test_die_of_plane_consistent(self, table2):
        for plane_index in range(table2.total_planes):
            channel, chip, die, _ = table2.decompose_plane(plane_index)
            assert table2.die_of_plane(plane_index) == table2.die_index(
                channel, chip, die
            )

    def test_channel_of_plane_consistent(self, table2):
        for plane_index in range(table2.total_planes):
            channel, _, _, _ = table2.decompose_plane(plane_index)
            assert table2.channel_of_plane(plane_index) == channel

    def test_page_number_roundtrip(self, table2):
        ppn = table2.page_number(12345, 100)
        assert table2.decompose_page(ppn) == (12345, 100)

    def test_address_of(self, table2):
        ppn = table2.page_number(table2.block_index(10, 3), 99)
        addr = table2.address_of(ppn)
        assert addr.block == 3
        assert addr.page == 99
        assert table2.plane_index(addr.channel, addr.chip, addr.die, addr.plane) == 10

    def test_wordline_and_page_type(self, table2):
        addr = table2.address_of(table2.page_number(0, 100))
        assert addr.wordline(3) == 33
        assert addr.page_type(3) == 1  # page 100 = WL 33, CSB

    def test_wordline_pages(self, table2):
        assert table2.wordline_pages(0) == (0, 1, 2)
        assert table2.wordline_pages(63) == (189, 190, 191)


class TestScaled:
    def test_scaled_changes_only_blocks(self, table2):
        small = table2.scaled(10)
        assert small.blocks_per_plane == 10
        assert small.channels == table2.channels
        assert small.pages_per_block == table2.pages_per_block


class TestProperties:
    @given(st.integers(min_value=0, max_value=350_208 * 192 - 1))
    def test_ppn_roundtrips_through_full_address(self, ppn):
        geometry = Geometry()
        addr = geometry.address_of(ppn)
        plane = geometry.plane_index(addr.channel, addr.chip, addr.die, addr.plane)
        block_index = geometry.block_index(plane, addr.block)
        assert geometry.page_number(block_index, addr.page) == ppn
