"""Tests for trace containers and MSR CSV I/O (repro.workloads.trace)."""

from __future__ import annotations

import pytest

from repro.workloads.request import IoRequest
from repro.workloads.trace import Trace, read_msr_csv, write_msr_csv


@pytest.fixture
def trace():
    return Trace(
        name="t",
        requests=[
            IoRequest(0.0, True, 0, 16384),
            IoRequest(100.0, False, 8192, 8192),
            IoRequest(200.0, True, 32768, 8192),
        ],
    )


class TestStatistics:
    def test_read_ratio(self, trace):
        assert trace.read_ratio() == pytest.approx(2 / 3)

    def test_mean_read_size_kb(self, trace):
        assert trace.mean_read_size_kb() == pytest.approx(12.0)

    def test_read_data_ratio(self, trace):
        assert trace.read_data_ratio() == pytest.approx(24576 / 32768)

    def test_duration(self, trace):
        assert trace.duration_us() == 200.0

    def test_footprint_pages(self, trace):
        # Pages 0,1 (first read), 1 (write), 4 (second read) -> {0,1,4}.
        assert trace.footprint_pages(8192) == 3

    def test_empty_trace(self):
        empty = Trace("e")
        assert empty.read_ratio() == 0.0
        assert empty.mean_read_size_kb() == 0.0
        assert empty.read_data_ratio() == 0.0
        assert empty.duration_us() == 0.0
        assert len(empty) == 0


class TestMsrRoundtrip:
    def test_write_then_read(self, trace, tmp_path):
        path = tmp_path / "trace.csv"
        write_msr_csv(trace, path)
        loaded = read_msr_csv(path)
        assert len(loaded) == len(trace)
        for original, parsed in zip(trace, loaded):
            assert parsed.is_read == original.is_read
            assert parsed.offset_bytes == original.offset_bytes
            assert parsed.size_bytes == original.size_bytes
            assert parsed.time_us == pytest.approx(original.time_us, abs=0.1)

    def test_reads_real_msr_format(self, tmp_path):
        path = tmp_path / "msr.csv"
        path.write_text(
            "128166372003061629,hm,1,Read,8192,16384,558\n"
            "128166372013061629,hm,1,Write,0,4096,100\n"
        )
        trace = read_msr_csv(path, name="hm_1")
        assert trace.name == "hm_1"
        assert trace.requests[0].is_read
        assert trace.requests[0].time_us == 0.0  # rebased
        assert trace.requests[1].time_us == pytest.approx(1_000_000.0)
        assert not trace.requests[1].is_read

    def test_rejects_unknown_type(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1,h,1,Trim,0,4096,0\n")
        with pytest.raises(ValueError, match="unknown request type"):
            read_msr_csv(path)

    def test_skips_short_rows(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("1,h,1\n2,h,1,Read,0,4096,0\n")
        assert len(read_msr_csv(path)) == 1
