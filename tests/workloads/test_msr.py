"""Tests for the workload catalog (repro.workloads.msr)."""

from __future__ import annotations

import pytest

from repro.workloads.msr import (
    ALL_WORKLOADS,
    EXTRA_WORKLOADS,
    TABLE3_REFERENCE,
    TABLE3_WORKLOADS,
    table3_row,
    workload,
)


class TestCatalog:
    def test_eleven_main_workloads(self):
        assert len(TABLE3_WORKLOADS) == 11
        assert set(TABLE3_WORKLOADS) == set(TABLE3_REFERENCE)

    def test_nine_extra_workloads(self):
        assert len(EXTRA_WORKLOADS) == 9

    def test_all_is_union(self):
        assert set(ALL_WORKLOADS) == set(TABLE3_WORKLOADS) | set(EXTRA_WORKLOADS)

    def test_lookup(self):
        assert workload("usr_1").name == "usr_1"

    def test_unknown_name_lists_options(self):
        with pytest.raises(KeyError, match="proj_1"):
            workload("nope")

    def test_table3_row(self):
        assert table3_row("usr_1") == (91.48, 52.72, 97.37, 45.44)


class TestCalibrationInputs:
    def test_read_ratios_match_paper(self):
        for name, spec in TABLE3_WORKLOADS.items():
            assert spec.read_ratio == pytest.approx(
                TABLE3_REFERENCE[name][0] / 100.0
            )

    def test_read_sizes_match_paper(self):
        for name, spec in TABLE3_WORKLOADS.items():
            expected = max(1.0, TABLE3_REFERENCE[name][1] / 8.0)
            assert spec.read_size_pages_mean == pytest.approx(expected)

    def test_update_fraction_scales_with_invalid_target(self):
        # Column 5 drives the update fraction; usr_1 (45%) > proj_3 (21%).
        assert (
            TABLE3_WORKLOADS["usr_1"].aging_update_fraction
            > TABLE3_WORKLOADS["proj_3"].aging_update_fraction
        )

    def test_extra_workloads_span_read_ratio_classes(self):
        ratios = [spec.read_ratio for spec in EXTRA_WORKLOADS.values()]
        assert max(ratios) > 0.95
        assert min(ratios) < 0.80

    def test_all_specs_are_read_dominant_or_mixed(self):
        for spec in ALL_WORKLOADS.values():
            assert 0.5 <= spec.read_ratio <= 1.0
