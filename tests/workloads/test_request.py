"""Tests for the trace-level request model (repro.workloads.request)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.workloads.request import IoRequest


class TestPageSpan:
    def test_aligned_single_page(self):
        req = IoRequest(0.0, True, 8192, 8192)
        assert req.page_span(8192) == (1, 1)
        assert req.lpns(8192) == (1,)

    def test_unaligned_crosses_boundary(self):
        req = IoRequest(0.0, True, 8000, 1000)
        # Bytes 8000..8999 straddle pages 0 and 1.
        assert req.page_span(8192) == (0, 2)

    def test_multi_page(self):
        req = IoRequest(0.0, False, 16384, 3 * 8192)
        assert req.lpns(8192) == (2, 3, 4)

    def test_tiny_request_is_one_page(self):
        req = IoRequest(0.0, True, 100, 1)
        assert req.page_span(8192) == (0, 1)


class TestValidation:
    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            IoRequest(-1.0, True, 0, 10)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            IoRequest(0.0, True, -1, 10)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            IoRequest(0.0, True, 0, 0)


class TestProperties:
    @given(
        offset=st.integers(0, 10**9),
        size=st.integers(1, 10**6),
    )
    def test_span_covers_request_exactly(self, offset, size):
        req = IoRequest(0.0, True, offset, size)
        first, count = req.page_span(8192)
        assert first * 8192 <= offset
        assert (first + count) * 8192 >= offset + size
        assert (first + count - 1) * 8192 < offset + size  # last page needed
