"""Tests for the synthetic workload generator (repro.workloads.synthetic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.synthetic import (
    WorkloadSpec,
    generate_workload,
    sample_update_lpns,
    update_working_set,
)


@pytest.fixture
def spec():
    return WorkloadSpec(
        name="test_wl",
        num_requests=4000,
        read_ratio=0.9,
        footprint_pages=10_000,
        read_size_pages_mean=4.0,
        aging_update_fraction=0.2,
    )


class TestDeterminism:
    def test_same_spec_same_trace(self, spec):
        a = generate_workload(spec)
        b = generate_workload(spec)
        assert a.trace.requests == b.trace.requests
        assert a.aging_lpns == b.aging_lpns

    def test_different_names_differ(self, spec):
        from dataclasses import replace

        other = replace(spec, name="other_wl")
        assert generate_workload(spec).trace.requests != (
            generate_workload(other).trace.requests
        )

    def test_seed_is_stable_across_processes(self, spec):
        # CRC-based, not hash()-based (which is salted per process).
        assert spec.effective_seed() == WorkloadSpec(
            name="test_wl", num_requests=1
        ).effective_seed()


class TestCalibration:
    def test_read_ratio_matches_spec(self, spec):
        trace = generate_workload(spec).trace
        assert trace.read_ratio() == pytest.approx(spec.read_ratio, abs=0.02)

    def test_read_size_matches_spec(self, spec):
        trace = generate_workload(spec).trace
        mean_pages = trace.mean_read_size_kb() / 8.0
        assert mean_pages == pytest.approx(spec.read_size_pages_mean, rel=0.15)

    def test_duration_roughly_matches(self, spec):
        trace = generate_workload(spec).trace
        assert 0.4 * spec.duration_us < trace.duration_us() < 2.5 * spec.duration_us

    def test_addresses_stay_in_footprint(self, spec):
        generated = generate_workload(spec)
        for request in generated.trace:
            first, count = request.page_span(8192)
            assert first >= 0
            assert first + count <= spec.footprint_pages

    def test_requests_sorted_by_time(self, spec):
        times = [r.time_us for r in generate_workload(spec).trace]
        assert times == sorted(times)


class TestUpdateWorkingSet:
    def test_size_matches_fraction(self, spec):
        # Chunked sampling may overshoot the quota by at most one chunk.
        working = update_working_set(spec)
        expected = int(spec.footprint_pages * spec.aging_update_fraction)
        assert expected <= len(working) <= expected + spec.update_chunk_pages

    def test_composed_of_contiguous_chunks(self, spec):
        # Clustered invalidation: the set contains long contiguous runs.
        working = update_working_set(spec)
        runs = np.split(working, np.where(np.diff(working) > 1)[0] + 1)
        mean_run = float(np.mean([len(r) for r in runs]))
        assert mean_run >= 4.0

    def test_unique_and_in_range(self, spec):
        working = update_working_set(spec)
        assert len(np.unique(working)) == len(working)
        assert working.min() >= 0
        assert working.max() < spec.footprint_pages

    def test_zero_fraction_empty(self, spec):
        from dataclasses import replace

        empty = update_working_set(replace(spec, aging_update_fraction=0.0))
        assert len(empty) == 0

    def test_aging_covers_working_set_once(self, spec):
        generated = generate_workload(spec)
        working = set(int(x) for x in update_working_set(spec))
        assert set(generated.aging_lpns) == working
        assert len(generated.aging_lpns) == len(working)

    def test_timed_writes_target_working_set(self, spec):
        generated = generate_workload(spec)
        working = set(int(x) for x in update_working_set(spec))
        for request in generated.trace:
            if not request.is_read:
                first, _ = request.page_span(8192)
                assert first in working

    def test_background_samples_come_from_working_set(self, spec):
        samples = sample_update_lpns(spec, 500)
        working = set(int(x) for x in update_working_set(spec))
        assert set(samples) <= working

    def test_background_empty_cases(self, spec):
        from dataclasses import replace

        assert sample_update_lpns(spec, 0) == []
        no_updates = replace(spec, aging_update_fraction=0.0)
        assert sample_update_lpns(no_updates, 100) == []


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"read_ratio": 1.5},
            {"footprint_pages": 4},
            {"num_requests": 0},
            {"aging_update_fraction": -0.1},
            {"hot_fraction": 0.0},
            {"read_size_pages_mean": 0.5},
        ],
    )
    def test_rejects_bad_specs(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadSpec(name="bad", **kwargs)

    def test_scaled(self, spec):
        scaled = spec.scaled(100, 5000)
        assert scaled.num_requests == 100
        assert scaled.footprint_pages == 5000
        assert scaled.name == spec.name
