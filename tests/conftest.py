"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import conventional_mlc, conventional_qlc, conventional_tlc, tlc_232
from repro.experiments.config import RunScale


@pytest.fixture
def tlc():
    return conventional_tlc()


@pytest.fixture
def mlc():
    return conventional_mlc()


@pytest.fixture
def qlc():
    return conventional_qlc()


@pytest.fixture
def tlc232():
    return tlc_232()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def quick_scale():
    return RunScale.quick()


@pytest.fixture
def tiny_scale():
    """Smallest scale that still exercises refresh and GC."""
    return RunScale(
        num_requests=400,
        footprint_pages=4000,
        blocks_per_plane=12,
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
    )
