"""Tests for wear accounting (repro.ftl.wear)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import conventional_tlc
from repro.flash.geometry import Geometry
from repro.ftl.blockstatus import BlockStatusTable
from repro.ftl.ftl import Ftl, FtlCounters
from repro.ftl.gc import GcPolicy
from repro.ftl.refresh import RefreshMode, RefreshPolicy
from repro.ftl.wear import collect_wear, write_amplification


def _table():
    geometry = Geometry(
        channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=1,
        blocks_per_plane=4, pages_per_block=12,
    )
    return BlockStatusTable(geometry, conventional_tlc())


class TestWearStats:
    def test_fresh_device(self):
        stats = collect_wear(_table())
        assert stats.total_erases == 0
        assert stats.wear_spread == 0
        assert stats.remaining_lifetime_fraction() == 1.0

    def test_uneven_wear(self):
        table = _table()
        table.blocks[0].erase_count = 10
        table.blocks[1].erase_count = 4
        stats = collect_wear(table)
        assert stats.total_erases == 14
        assert stats.max_erases == 10
        assert stats.min_erases == 0
        assert stats.wear_spread == 10
        assert stats.mean_erases == pytest.approx(3.5)

    def test_lifetime_fraction(self):
        table = _table()
        table.blocks[0].erase_count = 1500
        stats = collect_wear(table, rated_pe_cycles=3000)
        assert stats.worst_block_life_used == pytest.approx(0.5)
        assert stats.remaining_lifetime_fraction() == pytest.approx(0.5)

    def test_life_used_saturates(self):
        table = _table()
        table.blocks[0].erase_count = 9999
        assert collect_wear(table, rated_pe_cycles=3000).worst_block_life_used == 1.0


class TestWriteAmplification:
    def test_no_host_writes(self):
        assert write_amplification(FtlCounters()) == 1.0

    def test_pure_host_writes(self):
        counters = FtlCounters(host_writes=100)
        assert write_amplification(counters) == 1.0

    def test_gc_and_refresh_amplify(self):
        counters = FtlCounters(
            host_writes=100, gc_page_moves=30, refresh_page_moves=50,
            refresh_corrupted_pages=20,
        )
        assert write_amplification(counters) == pytest.approx(2.0)

    def test_ida_refresh_lowers_waf(self):
        """The paper's claim: IDA refresh writes fewer pages overall."""

        def run(mode):
            geometry = Geometry(
                channels=1, chips_per_channel=1, dies_per_chip=1,
                planes_per_die=2, blocks_per_plane=6, pages_per_block=12,
            )
            ftl = Ftl(
                geometry,
                conventional_tlc(),
                RefreshPolicy(mode=mode, period_us=1000.0, error_rate=0.2),
                gc_policy=GcPolicy(low_watermark=1, target_free=2),
                rng=np.random.default_rng(0),
            )
            for lpn in range(24):
                ftl.write_untimed(lpn, -2000.0)
            # One host write so WAF is defined, then a refresh cycle.
            ftl.host_write(0, 0.0)
            ftl.check_refresh(1.0)
            return write_amplification(ftl.counters)

        assert run(RefreshMode.IDA) < run(RefreshMode.BASELINE)
