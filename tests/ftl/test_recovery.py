"""Tests for the SPOR mount path (repro.ftl.recovery)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import conventional_tlc
from repro.flash.block import CONVENTIONAL_WL, TORN_WL
from repro.flash.geometry import Geometry
from repro.faults.invariants import check_coding_invariants
from repro.ftl.ftl import Ftl
from repro.ftl.gc import GcPolicy
from repro.ftl.recovery import MountReport, mount_device
from repro.ftl.refresh import RefreshMode, RefreshPolicy


def _geometry(blocks_per_plane=8):
    return Geometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=12,  # 4 TLC wordlines
    )


def _ftl(mode=RefreshMode.IDA, error_rate=0.2, seed=3):
    return Ftl(
        _geometry(),
        conventional_tlc(),
        RefreshPolicy(mode=mode, period_us=1000.0, error_rate=error_rate),
        gc_policy=GcPolicy(low_watermark=1, target_free=2),
        rng=np.random.default_rng(seed),
    )


def _mount(ftl):
    return mount_device(
        ftl.table.state,
        ftl.geometry,
        ftl.coding,
        ftl.refresh_policy,
        gc_policy=ftl.gc_policy,
        rng=np.random.default_rng(99),
    )


def _churn(ftl, lpns=40, writes=400, seed=7):
    """Random update traffic: overwrites, GC pressure, mixed-age blocks."""
    rng = np.random.default_rng(seed)
    for i in range(writes):
        ftl.write_untimed(int(rng.integers(0, lpns)), float(i))


class TestCleanMount:
    def test_round_trips_map_and_validity(self):
        ftl = _churn_ftl = _ftl()
        _churn(_churn_ftl)
        state = ftl.table.state
        live_map = dict(ftl.map.items())
        live_valid = bytes(state.valid_count)
        live_pages = bytes(state.page_state)
        live_seq = state.write_seq

        recovered, report = _mount(ftl)
        assert dict(recovered.map.items()) == live_map
        assert bytes(recovered.table.state.valid_count) == live_valid
        assert bytes(recovered.table.state.page_state) == live_pages
        assert recovered.table.state.write_seq == live_seq
        assert report.mapped_lpns == len(live_map)
        assert report.torn_rolled_forward == 0
        assert check_coding_invariants(recovered) == []

    def test_round_trips_pools(self):
        ftl = _ftl()
        _churn(ftl)
        live = [
            (set(p.free), p.active, set(p.used), set(p.retired))
            for p in ftl.table.planes
        ]
        recovered, _ = _mount(ftl)
        rebuilt = [
            (set(p.free), p.active, set(p.used), set(p.retired))
            for p in recovered.table.planes
        ]
        assert rebuilt == live

    def test_empty_device_mounts(self):
        ftl = _ftl()
        recovered, report = _mount(ftl)
        assert report == MountReport(
            free_blocks=ftl.geometry.total_blocks
        )
        assert dict(recovered.map.items()) == {}
        assert recovered.table.state.write_seq == 0

    def test_new_writes_continue_after_mount(self):
        ftl = _ftl()
        _churn(ftl, writes=120)
        recovered, _ = _mount(ftl)
        before = dict(recovered.map.items())
        recovered.write_untimed(5, 1000.0)
        after = recovered.map.lookup(5)
        assert after is not None
        assert after != before.get(5)
        assert check_coding_invariants(recovered) == []


class TestPreSporState:
    def test_missing_oob_is_rejected(self):
        ftl = _ftl()
        ftl.write_untimed(1, 0.0)
        state = ftl.table.state
        ppn = ftl.map.lookup(1)
        state.oob_lpn_np[ppn] = -1  # simulate a pre-SPOR image
        with pytest.raises(ValueError, match="no OOB record"):
            _mount(ftl)


class TestTornAdjustRollForward:
    def _cut_mid_refresh(self):
        """Churn, then plan a refresh whose ADJUSTs never commit."""
        ftl = _ftl()
        _churn(ftl, lpns=30, writes=300)
        # Age every block past the refresh period, then scan: the plan's
        # journal intents land on flash, but no commit ever arrives (the
        # simulated power dies before the ADJUST ops complete).
        ops = ftl.check_refresh(5000.0)
        assert ops, "refresh produced no work; test premise broken"
        journal = np.flatnonzero(ftl.table.state.journal_bit_np)
        assert len(journal), "no ADJUST journal intents pending"
        return ftl

    def test_rolls_forward_and_clears_journal(self):
        ftl = self._cut_mid_refresh()
        live_map = dict(ftl.map.items())
        recovered, report = _mount(ftl)
        state = recovered.table.state
        assert report.torn_rolled_forward > 0
        assert not np.flatnonzero(state.journal_bit_np).size
        assert not (state.wl_mode_np == TORN_WL).any()
        assert check_coding_invariants(recovered) == []
        # Every pre-cut LPN survives; only roll-forward moves remap.
        relocated = set(report.relocated_lpns)
        assert set(dict(recovered.map.items())) == set(live_map)
        for lpn, ppn in recovered.map.items():
            if lpn not in relocated:
                assert live_map[lpn] == ppn

    def test_counter_attributes_recoveries(self):
        ftl = self._cut_mid_refresh()
        recovered, report = _mount(ftl)
        assert (
            recovered.counters.torn_adjust_recoveries
            == report.torn_rolled_forward
        )


class TestStaleJournal:
    def test_conventional_wordline_intent_is_dropped(self):
        ftl = _ftl()
        _churn(ftl, writes=120)
        state = ftl.table.state
        # Forge a leftover intent on a conventional wordline: the block
        # was erased (or never adjusted) after the intent was journaled.
        target = None
        for gw in range(state.num_wordlines):
            if state.wl_mode[gw] == CONVENTIONAL_WL:
                target = gw
                break
        assert target is not None
        state.journal_bit_np[target] = 1
        state.journal_kept_np[target] = 0b110
        recovered, report = _mount(ftl)
        assert report.stale_journal_cleared == 1
        assert report.torn_rolled_forward == 0
        assert recovered.table.state.journal_bit[target] == 0
        assert check_coding_invariants(recovered) == []
