"""Tests for refresh planning (repro.ftl.refresh)."""

from __future__ import annotations

import pytest

from repro.flash.block import Block
from repro.ftl.refresh import (
    RefreshMode,
    RefreshPolicy,
    RefreshReport,
    plan_refresh,
)


def _tlc_block(wordline_validity):
    """A full TLC block with per-wordline validity as given."""
    wordlines = len(wordline_validity)
    block = Block(index=0, pages_per_block=wordlines * 3, bits_per_cell=3)
    for _ in range(wordlines * 3):
        block.program_next(0.0)
    for wl, validity in enumerate(wordline_validity):
        for bit, valid in enumerate(validity):
            if not valid:
                block.invalidate(wl * 3 + bit)
    return block


class TestBaselinePlan:
    def test_moves_every_valid_page(self):
        block = _tlc_block([(True, True, True), (False, True, True)])
        plan = plan_refresh(block, RefreshMode.BASELINE)
        assert sorted(plan.moves) == block.valid_pages()
        assert plan.kept == []
        assert plan.adjusted_wordlines == []

    def test_skips_fully_invalid_wordlines(self):
        block = _tlc_block([(False, False, False), (True, True, True)])
        plan = plan_refresh(block, RefreshMode.BASELINE)
        assert sorted(plan.moves) == [3, 4, 5]


class TestIdaPlan:
    def test_case2_keeps_csb_and_msb(self):
        block = _tlc_block([(False, True, True)])
        plan = plan_refresh(block, RefreshMode.IDA)
        (wl_plan,) = plan.wordlines
        assert wl_plan.decision.case == 2
        assert wl_plan.pages_to_move == ()
        assert wl_plan.pages_to_keep == (1, 2)

    def test_case1_converts_to_case2(self):
        block = _tlc_block([(True, True, True)])
        plan = plan_refresh(block, RefreshMode.IDA)
        (wl_plan,) = plan.wordlines
        assert wl_plan.decision.case == 1
        assert wl_plan.pages_to_move == (0,)  # LSB evicted
        assert wl_plan.pages_to_keep == (1, 2)

    def test_case4_keeps_msb_only(self):
        block = _tlc_block([(False, False, True)])
        plan = plan_refresh(block, RefreshMode.IDA)
        (wl_plan,) = plan.wordlines
        assert wl_plan.decision.case == 4
        assert wl_plan.pages_to_keep == (2,)

    def test_cases_5_to_7_move_like_baseline(self):
        block = _tlc_block(
            [(True, True, False), (False, True, False), (True, False, False)]
        )
        plan = plan_refresh(block, RefreshMode.IDA)
        assert plan.kept == []
        assert sorted(plan.moves) == block.valid_pages()

    def test_old_ida_block_is_fully_reclaimed(self):
        # Sec. III-C: IDA blocks are force-reclaimed at the next refresh.
        block = _tlc_block([(False, True, True)])
        block.set_wordline_ida(0, 1)
        plan = plan_refresh(block, RefreshMode.IDA)
        assert plan.kept == []
        assert sorted(plan.moves) == [1, 2]

    def test_mixed_block_accounting(self):
        block = _tlc_block(
            [
                (True, True, True),   # case 1: move 1, keep 2
                (False, True, True),  # case 2: keep 2
                (False, False, True), # case 4: keep 1
                (True, True, False),  # case 5: move 2
                (False, False, False),  # case 8: nothing
            ]
        )
        plan = plan_refresh(block, RefreshMode.IDA)
        assert len(plan.valid_pages) == 8
        assert len(plan.moves) == 3
        assert len(plan.kept) == 5
        assert len(plan.adjusted_wordlines) == 3

    def test_every_valid_page_is_moved_or_kept(self):
        validities = [
            (l, c, m)
            for l in (True, False)
            for c in (True, False)
            for m in (True, False)
        ]
        block = _tlc_block(validities)
        plan = plan_refresh(block, RefreshMode.IDA)
        handled = sorted(plan.moves + plan.kept)
        assert handled == block.valid_pages()


class TestReportArithmetic:
    def test_paper_overhead_formulas(self):
        # Sec. III-C: extra reads = N_target, extra writes = N_error,
        # total reads = N_valid + N_target, total writes = N_valid' + N_error.
        report = RefreshReport(
            block_index=0, n_valid=113, n_moved=55, n_target=58, n_error=12
        )
        assert report.extra_reads == 58
        assert report.extra_writes == 12
        assert report.total_reads == 171
        assert report.total_writes == 67


class TestPolicy:
    def test_scan_interval_defaults_to_sixteenth(self):
        policy = RefreshPolicy(period_us=1600.0)
        assert policy.scan_interval_us == 100.0

    def test_explicit_scan_interval(self):
        policy = RefreshPolicy(period_us=1600.0, check_interval_us=50.0)
        assert policy.scan_interval_us == 50.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            RefreshPolicy(period_us=0.0)
        with pytest.raises(ValueError):
            RefreshPolicy(error_rate=1.5)
