"""Tests for the FTL orchestrator (repro.ftl.ftl)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import conventional_tlc
from repro.flash.geometry import Geometry
from repro.ftl.ftl import Ftl
from repro.ftl.gc import GcPolicy
from repro.ftl.ops import OpKind
from repro.ftl.refresh import RefreshMode, RefreshPolicy


def _small_geometry(blocks_per_plane=6):
    return Geometry(
        channels=1,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=blocks_per_plane,
        pages_per_block=12,  # 4 TLC wordlines
    )


def _ftl(mode=RefreshMode.BASELINE, error_rate=0.0, blocks_per_plane=6):
    return Ftl(
        _small_geometry(blocks_per_plane),
        conventional_tlc(),
        RefreshPolicy(mode=mode, period_us=1000.0, error_rate=error_rate),
        gc_policy=GcPolicy(low_watermark=1, target_free=2),
        rng=np.random.default_rng(3),
    )


class TestHostPath:
    def test_write_then_read(self):
        ftl = _ftl()
        result = ftl.host_write(5, 0.0)
        assert len(result.host_ops) == 1
        assert result.host_ops[0].kind is OpKind.WRITE
        op = ftl.host_read(5, 1.0)
        assert op.kind is OpKind.READ
        assert op.senses == 1  # first page of a block is an LSB page
        assert op.bit == 0

    def test_overwrite_invalidates_old_copy(self):
        ftl = _ftl()
        ftl.host_write(5, 0.0)
        ppn_old = ftl.map.lookup(5)
        ftl.host_write(5, 1.0)
        ppn_new = ftl.map.lookup(5)
        assert ppn_new != ppn_old
        block, page = ftl.table.block_of_ppn(ppn_old)
        assert block.state_of(page).name == "INVALID"

    def test_page_types_cycle_with_fill(self):
        ftl = _ftl()
        # With 2 planes, lpns 0,1 land on page 0 (LSB) of each plane;
        # lpns 2,3 on page 1 (CSB); lpns 4,5 on page 2 (MSB).
        for lpn in range(6):
            ftl.host_write(lpn, 0.0)
        assert ftl.host_read(0, 1.0).senses == 1
        assert ftl.host_read(2, 1.0).senses == 2
        assert ftl.host_read(4, 1.0).senses == 4

    def test_unmapped_read_is_automapped_and_counted(self):
        ftl = _ftl()
        op = ftl.host_read(40, 0.0)
        assert op.kind is OpKind.READ
        assert ftl.counters.unmapped_reads == 1
        assert ftl.map.lookup(40) is not None

    def test_read_reports_wordline_validity(self):
        ftl = _ftl()
        for lpn in range(6):
            ftl.host_write(lpn, 0.0)
        ftl.host_write(0, 1.0)  # invalidate the LSB neighbour of lpn 2/4
        op = ftl.host_read(4, 2.0)  # MSB page sharing WL with old lpn 0
        assert op.wl_validity == (False, True, True)


class TestGc:
    def test_gc_reclaims_when_low(self):
        ftl = _ftl(blocks_per_plane=3)
        # Fill both planes' blocks with constantly-overwritten data so
        # invalid pages accumulate and GC must fire.
        for round_ in range(10):
            for lpn in range(12):
                ftl.host_write(lpn, float(round_))
        assert ftl.counters.gc_invocations > 0
        assert ftl.counters.block_erases > 0
        # All live data still mapped.
        for lpn in range(12):
            assert ftl.map.lookup(lpn) is not None

    def test_gc_preserves_data_locations_consistency(self):
        ftl = _ftl(blocks_per_plane=3)
        for round_ in range(8):
            for lpn in range(10):
                ftl.host_write(lpn, float(round_))
        for lpn in range(10):
            ppn = ftl.map.lookup(lpn)
            block, page = ftl.table.block_of_ppn(ppn)
            assert block.state_of(page).name == "VALID"
            assert ftl.map.owner(ppn) == lpn


class TestRefreshExecution:
    def _fill_and_age(self, ftl, lpns=24):
        for lpn in range(lpns):
            ftl.write_untimed(lpn, -2000.0)  # older than the period

    def test_baseline_refresh_moves_everything(self):
        ftl = _ftl(RefreshMode.BASELINE)
        self._fill_and_age(ftl)
        ops = ftl.check_refresh(0.0)
        assert ftl.counters.refresh_invocations == 2  # one block per plane
        kinds = {op.kind for op in ops}
        assert OpKind.ADJUST not in kinds
        # Refreshed blocks are left with no valid pages.
        for report in ftl.refresh_reports:
            block = ftl.table.block(report.block_index)
            assert block.valid_count == 0
        # All data still readable.
        for lpn in range(24):
            assert ftl.map.lookup(lpn) is not None

    def test_ida_refresh_adjusts_wordlines(self):
        ftl = _ftl(RefreshMode.IDA)
        self._fill_and_age(ftl)
        ops = ftl.check_refresh(0.0)
        assert any(op.kind is OpKind.ADJUST for op in ops)
        assert ftl.counters.refresh_adjusted_wordlines > 0
        # Fully-valid wordlines are case 1: LSBs move, CSB/MSB stay fast.
        for report in ftl.refresh_reports:
            block = ftl.table.block(report.block_index)
            if report.n_adjusted_wordlines:
                assert block.is_ida

    def test_ida_refresh_speeds_up_kept_pages(self):
        ftl = _ftl(RefreshMode.IDA)
        self._fill_and_age(ftl, lpns=24)
        ftl.check_refresh(0.0)
        # Find an MSB page still living in an IDA block.
        senses = [ftl.host_read(lpn, 1.0).senses for lpn in range(24)]
        assert min(senses) == 1
        assert max(senses) <= 4
        ida_reads = [ftl.host_read(lpn, 1.0) for lpn in range(24)]
        assert any(op.from_ida for op in ida_reads)
        for op in ida_reads:
            if op.from_ida and op.bit == 2:
                assert op.senses == 2  # MSB via IDA (CSB+MSB kept)
            if op.from_ida and op.bit == 1:
                assert op.senses == 1  # CSB via IDA

    def test_ida_refresh_error_rate_writes_back(self):
        ftl = _ftl(RefreshMode.IDA, error_rate=1.0)
        self._fill_and_age(ftl)
        ftl.check_refresh(0.0)
        for report in ftl.refresh_reports:
            assert report.n_error == report.n_target
        # With all kept pages corrupted, everything was moved out.
        for report in ftl.refresh_reports:
            block = ftl.table.block(report.block_index)
            assert block.valid_count == 0

    def test_refresh_accounting_identity(self):
        ftl = _ftl(RefreshMode.IDA, error_rate=0.5)
        self._fill_and_age(ftl)
        ftl.check_refresh(0.0)
        for report in ftl.refresh_reports:
            assert report.n_valid == report.n_moved + report.n_target
            assert 0 <= report.n_error <= report.n_target

    def test_ida_block_reclaimed_next_cycle(self):
        ftl = _ftl(RefreshMode.IDA)
        self._fill_and_age(ftl)
        ftl.check_refresh(0.0)
        ida_blocks = [b.index for b in ftl.table.blocks if b.is_ida]
        assert ida_blocks
        # Next period: the IDA blocks are due again and fully moved.
        ftl.check_refresh(2000.0)
        for index in ida_blocks:
            assert ftl.table.block(index).valid_count == 0

    def test_young_blocks_not_refreshed(self):
        ftl = _ftl(RefreshMode.BASELINE)
        for lpn in range(24):
            ftl.write_untimed(lpn, -10.0)  # younger than the period
        assert ftl.check_refresh(0.0) == []

    def test_data_never_lost_across_refresh_cycles(self):
        ftl = _ftl(RefreshMode.IDA, error_rate=0.3)
        self._fill_and_age(ftl)
        for cycle in range(4):
            ftl.check_refresh(cycle * 2000.0)
            for lpn in range(24):
                ppn = ftl.map.lookup(lpn)
                assert ppn is not None
                block, page = ftl.table.block_of_ppn(ppn)
                assert block.state_of(page).name == "VALID"


class TestCensus:
    def test_in_use_and_ida_counts(self):
        ftl = _ftl(RefreshMode.IDA)
        for lpn in range(24):
            ftl.write_untimed(lpn, -2000.0)
        assert ftl.table.in_use_blocks() > 0
        assert ftl.table.ida_blocks() == 0
        ftl.check_refresh(0.0)
        assert ftl.table.ida_blocks() > 0
        assert ftl.table.total_valid_pages() == 24


class TestBlockStatusTable:
    def test_rejects_coding_geometry_mismatch(self, mlc):
        from repro.ftl.blockstatus import BlockStatusTable

        with pytest.raises(ValueError, match="bits"):
            BlockStatusTable(_small_geometry(), mlc)

    def test_senses_for_ppn(self):
        ftl = _ftl()
        ftl.host_write(0, 0.0)
        ppn = ftl.map.lookup(0)
        assert ftl.table.senses_for_ppn(ppn) == 1
