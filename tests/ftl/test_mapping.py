"""Tests for the page map (repro.ftl.mapping)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ftl.mapping import PageMap


class TestBasicOperations:
    def test_lookup_unmapped(self):
        assert PageMap().lookup(7) is None

    def test_bind_and_lookup(self):
        m = PageMap()
        m.bind(7, 100)
        assert m.lookup(7) == 100
        assert m.owner(100) == 7
        assert 7 in m
        assert len(m) == 1

    def test_rebind_same_lpn_releases_old_ppn(self):
        m = PageMap()
        m.bind(7, 100)
        old = m.bind(7, 200)
        assert old == 100
        assert m.lookup(7) == 200
        assert m.owner(100) is None
        assert m.owner(200) == 7

    def test_bind_occupied_ppn_raises(self):
        m = PageMap()
        m.bind(7, 100)
        with pytest.raises(ValueError, match="already holds"):
            m.bind(8, 100)

    def test_unbind(self):
        m = PageMap()
        m.bind(7, 100)
        assert m.unbind(7) == 100
        assert m.lookup(7) is None
        assert m.owner(100) is None
        assert m.unbind(7) is None

    def test_rebind_physical(self):
        m = PageMap()
        m.bind(7, 100)
        assert m.rebind_physical(100, 555) == 7
        assert m.lookup(7) == 555
        assert m.owner(100) is None
        assert m.owner(555) == 7

    def test_rebind_physical_unowned_raises(self):
        with pytest.raises(KeyError):
            PageMap().rebind_physical(100, 200)


class TestInverseInvariant:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["bind", "unbind", "move"]),
                st.integers(0, 19),  # lpn
                st.integers(0, 99),  # ppn
            ),
            max_size=60,
        )
    )
    def test_forward_and_reverse_stay_inverse(self, operations):
        m = PageMap()
        for op, lpn, ppn in operations:
            if op == "bind":
                owner = m.owner(ppn)
                if owner is not None and owner != lpn:
                    continue  # would be rejected
                m.bind(lpn, ppn)
            elif op == "unbind":
                m.unbind(lpn)
            else:  # move the lpn's data to ppn if possible
                current = m.lookup(lpn)
                if current is None or m.owner(ppn) is not None:
                    continue
                m.rebind_physical(current, ppn)
        # Invariant: forward and reverse maps are exact inverses.
        for lpn in range(20):
            ppn = m.lookup(lpn)
            if ppn is not None:
                assert m.owner(ppn) == lpn
        for ppn in range(100):
            lpn = m.owner(ppn)
            if lpn is not None:
                assert m.lookup(lpn) == ppn
