"""Tests for GC victim selection (repro.ftl.gc)."""

from __future__ import annotations

import pytest

from repro.flash.block import Block
from repro.flash.plane import PlanePool
from repro.ftl.gc import GcPolicy, select_victim


def _pool_with_filled_blocks(valid_counts, pages=6):
    """A pool whose blocks are full with the given number of valid pages."""
    blocks = [
        Block(index=i, pages_per_block=pages, bits_per_cell=3)
        for i in range(len(valid_counts) + 1)
    ]
    pool = PlanePool(plane_index=0, blocks=blocks)
    for valid in valid_counts:
        block = pool.active_block(0.0)
        for _ in range(pages):
            block.program_next(0.0)
        for page in range(pages - valid):
            block.invalidate(page)
        pool.retire_active()
    return pool


class TestVictimSelection:
    def test_picks_fewest_valid_pages(self):
        pool = _pool_with_filled_blocks([4, 1, 3])
        victim = select_victim(pool)
        assert victim is not None
        assert victim.valid_count == 1

    def test_tie_breaks_on_erase_count(self):
        pool = _pool_with_filled_blocks([2, 2])
        pool.blocks[0].erase_count = 5
        victim = select_victim(pool)
        assert victim.index == 1  # lower wear preferred

    def test_skips_locked_blocks(self):
        pool = _pool_with_filled_blocks([1, 3])
        pool.blocks[0].locked = True
        victim = select_victim(pool)
        assert victim.index == 1

    def test_no_candidates_returns_none(self):
        pool = _pool_with_filled_blocks([])
        assert select_victim(pool) is None

    def test_partial_blocks_ineligible(self):
        pool = _pool_with_filled_blocks([2])
        # Open a second block but only half-fill it.
        block = pool.active_block(0.0)
        block.program_next(0.0)
        victim = select_victim(pool)
        assert victim.index == 0


class TestPolicy:
    def test_defaults_valid(self):
        policy = GcPolicy()
        assert policy.target_free >= policy.low_watermark >= 1

    def test_rejects_bad_watermarks(self):
        with pytest.raises(ValueError):
            GcPolicy(low_watermark=0)
        with pytest.raises(ValueError):
            GcPolicy(low_watermark=4, target_free=2)
