"""Tests for static allocation (repro.ftl.allocation)."""

from __future__ import annotations

import pytest

from repro.flash.geometry import Geometry
from repro.ftl.allocation import StaticAllocator, cwdp_order, pdwc_order


@pytest.fixture
def geometry():
    return Geometry(
        channels=2, chips_per_channel=2, dies_per_chip=2, planes_per_die=2,
        blocks_per_plane=4,
    )


class TestCwdpOrder:
    def test_covers_every_plane_once(self, geometry):
        order = cwdp_order(geometry)
        assert sorted(order) == list(range(geometry.total_planes))

    def test_channel_varies_fastest(self, geometry):
        order = cwdp_order(geometry)
        channels = [geometry.channel_of_plane(p) for p in order[: geometry.channels]]
        # The first `channels` allocations hit every channel.
        assert sorted(channels) == list(range(geometry.channels))

    def test_consecutive_pages_alternate_channels(self, geometry):
        order = cwdp_order(geometry)
        for first, second in zip(order, order[1:]):
            if geometry.channel_of_plane(first) == geometry.channel_of_plane(second):
                # Only allowed when a full channel round completed.
                assert order.index(second) % geometry.channels == 0


class TestPdwcOrder:
    def test_covers_every_plane_once(self, geometry):
        order = pdwc_order(geometry)
        assert sorted(order) == list(range(geometry.total_planes))

    def test_differs_from_cwdp(self, geometry):
        assert pdwc_order(geometry) != cwdp_order(geometry)

    def test_channel_varies_slowest(self, geometry):
        order = pdwc_order(geometry)
        half = geometry.total_planes // geometry.channels
        assert all(geometry.channel_of_plane(p) == 0 for p in order[:half])


class TestAllocator:
    def test_cycles_through_all_planes(self, geometry):
        allocator = StaticAllocator(geometry, "cwdp")
        picks = [allocator.next_plane() for _ in range(geometry.total_planes * 2)]
        assert sorted(set(picks)) == list(range(geometry.total_planes))
        assert picks[: geometry.total_planes] == picks[geometry.total_planes :]

    def test_unknown_strategy_rejected(self, geometry):
        with pytest.raises(ValueError, match="unknown allocation strategy"):
            StaticAllocator(geometry, "xyz")
