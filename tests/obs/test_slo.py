"""Tests for the sim-time SLO engine (repro.obs.slo)."""

from __future__ import annotations

import pytest

from repro.obs.slo import DEFAULT_READ_P99_SLO, SloEngine, SloObjective
from repro.obs.tracer import NULL_TRACER, JsonlSink, Tracer, read_jsonl_trace


def objective(**overrides) -> SloObjective:
    base = dict(
        name="lat",
        metric="read_p99_us",
        threshold=100.0,
        window_us=1000.0,
        budget=0.1,
    )
    base.update(overrides)
    return SloObjective(**base)


class TestObjectiveValidation:
    def test_default_is_valid(self):
        assert DEFAULT_READ_P99_SLO.metric == "read_p99_us"

    @pytest.mark.parametrize(
        "bad",
        [
            {"name": ""},
            {"metric": ""},
            {"window_us": 0.0},
            {"window_us": -1.0},
            {"budget": 0.0},
            {"budget": 1.5},
            {"recovery": 1.0},
            {"recovery": -0.1},
        ],
    )
    def test_invalid_fields_rejected(self, bad):
        with pytest.raises(ValueError):
            objective(**bad)

    def test_objectives_are_hashable_frozen(self):
        assert objective() == objective()
        {objective()}


class TestBreachTransitions:
    def test_breach_fires_once_when_budget_exhausts(self):
        # Budget allows 100 us of violation in a 1000 us window; each
        # violating interval is 100 us so the first one exhausts it.
        engine = SloEngine([objective()])
        fired = engine.observe(0.0, 100.0, {"read_p99_us": 500.0})
        assert len(fired) == 1
        breach = fired[0]
        assert breach["objective"] == "lat"
        assert breach["value"] == 500.0
        assert breach["threshold"] == 100.0
        assert breach["budget_consumed"] >= 1.0
        # Still violating: no new event while the breach is active.
        assert engine.observe(100.0, 200.0, {"read_p99_us": 500.0}) == []
        assert engine.breach_count == 1

    def test_healthy_samples_never_breach(self):
        engine = SloEngine([objective()])
        for i in range(20):
            assert engine.observe(i * 100.0, (i + 1) * 100.0, {"read_p99_us": 50.0}) == []
        assert engine.breach_count == 0

    def test_value_equal_to_threshold_is_not_violation(self):
        engine = SloEngine([objective()])
        assert engine.observe(0.0, 100.0, {"read_p99_us": 100.0}) == []
        assert engine.breach_count == 0

    def test_recovery_hysteresis_allows_second_breach(self):
        # One violating interval consumes the whole budget.  After enough
        # healthy time the violation leaves the rolling window, consumption
        # drops below recovery (0.5), and a later violation breaches again.
        engine = SloEngine([objective()])
        assert len(engine.observe(0.0, 100.0, {"read_p99_us": 500.0})) == 1
        t = 100.0
        while t < 1200.0:
            engine.observe(t, t + 100.0, {"read_p99_us": 10.0})
            t += 100.0
        fired = engine.observe(t, t + 100.0, {"read_p99_us": 500.0})
        assert len(fired) == 1
        assert engine.breach_count == 2

    def test_window_eviction_bounds_consumption(self):
        # Violations older than the window stop counting: with a 1000 us
        # window and a violation at [0, 100], by t=1200 it is evicted.
        engine = SloEngine([objective(budget=0.5)])
        engine.observe(0.0, 100.0, {"read_p99_us": 500.0})
        t = 100.0
        while t < 1500.0:
            engine.observe(t, t + 100.0, {"read_p99_us": 10.0})
            t += 100.0
        summary = engine.summary()["objectives"][0]
        assert summary["breaching"] is False
        assert summary["violating_intervals"] == 1

    def test_burn_rate_reflects_violation_fraction(self):
        # 1 of 10 intervals violating with budget 0.1 → burn rate 1.0.
        engine = SloEngine([objective(budget=0.5)])
        engine.observe(0.0, 100.0, {"read_p99_us": 500.0})
        for i in range(1, 10):
            engine.observe(i * 100.0, (i + 1) * 100.0, {"read_p99_us": 10.0})
        summary = engine.summary()["objectives"][0]
        assert summary["worst_burn_rate"] == pytest.approx(2.0)  # 1.0 / 0.5


class TestEngine:
    def test_default_objectives(self):
        assert SloEngine().objectives == (DEFAULT_READ_P99_SLO,)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SloEngine([objective(), objective(threshold=5.0)])

    def test_missing_metric_skipped(self):
        # An interval with no completed reads has no read_p99_us; absence
        # is not a violation and must not throw.
        engine = SloEngine([objective()])
        assert engine.observe(0.0, 100.0, {}) == []
        summary = engine.summary()["objectives"][0]
        assert summary["observed_us"] == 0.0

    def test_multiple_objectives_evaluated_independently(self):
        engine = SloEngine(
            [
                objective(name="tight", threshold=10.0),
                objective(name="loose", threshold=10_000.0),
            ]
        )
        fired = engine.observe(0.0, 100.0, {"read_p99_us": 500.0})
        assert [b["objective"] for b in fired] == ["tight"]

    def test_summary_shape(self):
        engine = SloEngine([objective()])
        engine.observe(0.0, 100.0, {"read_p99_us": 500.0})
        summary = engine.summary()
        assert summary["breaches"] == 1
        entry = summary["objectives"][0]
        for key in (
            "objective",
            "metric",
            "threshold",
            "window_us",
            "budget",
            "observed_us",
            "violated_us",
            "violating_intervals",
            "worst_burn_rate",
            "breaching",
            "breaches",
        ):
            assert key in entry
        assert entry["breaches"][0]["time_us"] == 100.0


class TestTracerIntegration:
    def test_breach_emitted_as_slo_breach_event(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonlSink(trace_path))
        engine = SloEngine([objective()])
        engine.bind_tracer(tracer)
        engine.observe(0.0, 100.0, {"read_p99_us": 500.0})
        tracer.close()
        events = [e for e in read_jsonl_trace(trace_path) if e["kind"] == "slo_breach"]
        assert len(events) == 1
        event = events[0]
        assert event["t_us"] == 100.0
        assert event["objective"] == "lat"
        assert event["value"] == 500.0
        assert "time_us" not in event  # positional time wins; no collision

    def test_disabled_tracer_not_bound(self):
        engine = SloEngine([objective()])
        engine.bind_tracer(NULL_TRACER)
        # Breach still fires and is recorded; it just isn't emitted.
        assert engine.observe(0.0, 100.0, {"read_p99_us": 500.0})
        assert engine._tracer is None
