"""Tests for the sim-time profiler (repro.obs.profiler).

The three promises under test: attribution is *conservative* (critical-
path stages tile the measured response exactly), the Chrome trace export
is structurally valid (Perfetto-loadable), and an attached profiler
never perturbs the simulation it observes.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.experiments import (
    RunScale,
    ida,
    manifest_for_run,
    run_workload,
)
from repro.obs import IntervalCollector, SimProfiler, validate_chrome_trace
from repro.obs.profiler import PROFILE_SCHEMA
from repro.workloads import workload


def profiled_run(keep_events: bool = True, max_events: int = 200_000,
                 collector: IntervalCollector | None = None):
    profiler = SimProfiler(keep_events=keep_events, max_events=max_events)
    result = run_workload(
        ida(0.2), workload("usr_1"), RunScale.tiny(), seed=11,
        profiler=profiler, collector=collector,
    )
    return result, profiler


@pytest.fixture(scope="module")
def run_and_profiler():
    return profiled_run()


class TestConservation:
    def test_zero_residual(self, run_and_profiler):
        result, _ = run_and_profiler
        assert result.profile is not None
        # The critical op's stages tile dispatch -> completion exactly,
        # so the worst per-request residual is float-noise at most.
        assert result.profile["max_residual_us"] <= 1e-6

    def test_mean_attribution_matches_measured_response(self, run_and_profiler):
        result, _ = run_and_profiler
        for kind, measured in (
            ("read", result.metrics.read_response),
            ("write", result.metrics.write_response),
        ):
            cell = result.profile["requests"][kind]
            attributed = (
                cell["mean_queue_wait_us"]
                + sum(cell["mean_service_us"].values())
                + cell["mean_host_overhead_us"]
            )
            assert attributed == pytest.approx(measured.mean_us, abs=1e-6)
            assert cell["count"] == measured.count

    def test_read_stages_are_the_read_pipeline(self, run_and_profiler):
        result, _ = run_and_profiler
        stages = result.profile["stages"]["host_read"]
        assert set(stages) >= {"sense", "transfer", "ecc"}
        for cell in stages.values():
            assert cell["count"] > 0
            assert cell["service_us"] > 0.0

    def test_resource_section_covers_dies_and_channels(self, run_and_profiler):
        result, _ = run_and_profiler
        resources = result.profile["resources"]
        assert set(resources["utilisation"]) == {"die", "channel"}
        assert 0.0 < resources["utilisation"]["die"] <= 1.0
        # read-first: a queued read's wait is never attributed to a
        # write the scheduler *chose* to start during the wait.
        wait_classes = resources["wait_classes"]["die"]
        behind = wait_classes["host_read"]["host_write"]["behind_us"]
        assert behind == 0.0

    def test_schema_tag(self, run_and_profiler):
        result, _ = run_and_profiler
        assert result.profile["schema"] == PROFILE_SCHEMA


class TestChromeTrace:
    def test_export_validates(self, run_and_profiler):
        _, profiler = run_and_profiler
        trace = profiler.to_chrome_trace()
        assert validate_chrome_trace(trace) == []
        assert trace["traceEvents"]
        assert trace["displayTimeUnit"] == "ms"

    def test_export_is_json_serialisable(self, run_and_profiler):
        _, profiler = run_and_profiler
        json.dumps(profiler.to_chrome_trace())

    def test_one_track_per_resource(self, run_and_profiler):
        _, profiler = run_and_profiler
        trace = profiler.to_chrome_trace()
        thread_names = [
            e["args"]["name"] for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert any(name.startswith("die") for name in thread_names)
        assert any(name.startswith("channel") for name in thread_names)

    def test_flows_pair_up(self, run_and_profiler):
        _, profiler = run_and_profiler
        trace = profiler.to_chrome_trace()
        starts = {e["id"] for e in trace["traceEvents"] if e["ph"] == "s"}
        ends = {e["id"] for e in trace["traceEvents"] if e["ph"] == "f"}
        assert starts and starts == ends

    def test_validator_flags_broken_traces(self):
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        bad_order = {"traceEvents": [
            {"ph": "X", "ts": 10.0, "dur": 1.0, "pid": 0, "tid": 0, "name": "a"},
            {"ph": "X", "ts": 5.0, "dur": 1.0, "pid": 0, "tid": 0, "name": "b"},
        ]}
        assert validate_chrome_trace(bad_order) != []
        unpaired_flow = {"traceEvents": [
            {"ph": "s", "ts": 1.0, "pid": 0, "tid": 0, "id": 7, "name": "req"},
        ]}
        assert validate_chrome_trace(unpaired_flow) != []

    def test_event_cap_drops_not_crashes(self):
        result, profiler = profiled_run(max_events=50)
        assert result.profile["events_dropped"] > 0
        assert validate_chrome_trace(profiler.to_chrome_trace()) == []


class TestPassivity:
    def test_profiler_does_not_perturb_metrics(self, run_and_profiler):
        profiled, _ = run_and_profiler
        bare = run_workload(ida(0.2), workload("usr_1"), RunScale.tiny(), seed=11)
        assert bare.profile is None
        assert bare.metrics.read_response.mean_us == profiled.metrics.read_response.mean_us
        assert bare.metrics.read_response.count == profiled.metrics.read_response.count
        assert bare.metrics.write_response.mean_us == profiled.metrics.write_response.mean_us
        assert bare.metrics.phys_ops_dispatched == profiled.metrics.phys_ops_dispatched

    def test_unprofiled_manifest_is_byte_identical(self, run_and_profiler):
        profiled, _ = run_and_profiler
        bare = run_workload(ida(0.2), workload("usr_1"), RunScale.tiny(), seed=11)
        bare_manifest = json.dumps(manifest_for_run(bare), sort_keys=True)
        profiled_manifest = manifest_for_run(profiled)
        assert "profile" in profiled_manifest
        del profiled_manifest["profile"]
        assert json.dumps(profiled_manifest, sort_keys=True) == bare_manifest


class TestTimeline:
    def test_interval_samples_land_in_profile(self):
        result, _ = profiled_run(collector=IntervalCollector(5_000_000.0))
        timeline = result.profile["timeline"]
        assert timeline
        for sample in timeline:
            assert 0.0 <= sample["die_busy_frac"] <= 1.0
            assert 0.0 <= sample["channel_busy_frac"] <= 1.0
            assert set(sample["die_busy_by_class"]) == {
                "host_read", "host_write", "internal",
            }

    def test_no_collector_no_timeline(self, run_and_profiler):
        result, _ = run_and_profiler
        assert result.profile["timeline"] == []


class TestTransport:
    def test_pickle_roundtrip_preserves_aggregate(self, run_and_profiler):
        _, profiler = run_and_profiler
        clone = pickle.loads(pickle.dumps(profiler))
        assert clone.aggregate() == profiler.aggregate()

    def test_pickle_drops_live_simulator_refs(self, run_and_profiler):
        _, profiler = run_and_profiler
        state = profiler.__getstate__()
        assert state["_engine"] is None
        assert state["_dies"] == []
        assert state["_channels"] == []
