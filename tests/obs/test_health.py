"""Tests for the device-health monitor (repro.obs.health)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.runner import run_workload
from repro.experiments.systems import ida
from repro.obs.health import HEALTH_SCHEMA, HealthMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine, SloObjective
from repro.workloads import workload


@pytest.fixture(scope="module")
def monitored_run(request):
    from repro.experiments.config import RunScale

    scale = RunScale(
        num_requests=400,
        footprint_pages=4000,
        blocks_per_plane=12,
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
    )
    monitor = HealthMonitor(
        registry=MetricsRegistry(),
        slo=SloEngine(
            [
                SloObjective(
                    name="loose",
                    metric="read_p99_us",
                    threshold=1e9,
                    window_us=1e6,
                )
            ]
        ),
    )
    result = run_workload(ida(0.2), workload("usr_1"), scale, health=monitor)
    return monitor, result


class TestConstruction:
    def test_block_groups_validated(self):
        with pytest.raises(ValueError):
            HealthMonitor(block_groups=0)

    def test_unbound_sample_raises(self):
        with pytest.raises(RuntimeError, match="not bound"):
            HealthMonitor().sample(0.0, 100.0)


class TestMonitoredRun(object):
    def test_series_collected_in_time_order(self, monitored_run):
        monitor, _ = monitored_run
        series = monitor.series()
        assert len(series) >= 8  # auto-collector carves ~16 intervals
        ends = [snap["end_us"] for snap in series]
        assert ends == sorted(ends)
        assert all(s["start_us"] < s["end_us"] for s in series)

    def test_snapshots_show_device_activity(self, monitored_run):
        monitor, result = monitored_run
        final = monitor.snapshots[-1]
        assert final.wear["max"] > 0
        assert final.in_use_blocks > 0
        assert sum(s.reads for s in monitor.snapshots) > 0
        assert any(s.gc_invocations for s in monitor.snapshots) or any(
            s.refresh_invocations for s in monitor.snapshots
        )
        # IDA system under refresh pressure exposes adjusted blocks.
        assert any(s.ida_exposure > 0 for s in monitor.snapshots)

    def test_summary_aggregates(self, monitored_run):
        monitor, _ = monitored_run
        summary = monitor.summary()
        assert summary["schema"] == HEALTH_SCHEMA
        assert summary["samples"] == len(monitor.snapshots)
        assert summary["wear"] == monitor.snapshots[-1].wear
        assert summary["read_retries"] == sum(
            s.read_retries for s in monitor.snapshots
        )
        assert summary["max_est_rber"] > 0.0

    def test_payload_is_json_ready_and_complete(self, monitored_run):
        monitor, result = monitored_run
        payload = monitor.to_payload()
        assert set(payload) == {"schema", "summary", "series", "slo", "registry"}
        json.dumps(payload)
        assert result.health == payload

    def test_gauges_published_to_registry(self, monitored_run):
        monitor, _ = monitored_run
        snap = monitor.registry.snapshot()["metrics"]
        final = monitor.snapshots[-1]
        assert (
            snap["device_wear_p99_erases"]["samples"][0]["value"]
            == final.wear["p99"]
        )
        assert snap["device_ida_exposure"]["samples"][0]["value"] == pytest.approx(
            final.ida_exposure
        )
        # Per-group RBER gauge is labeled by block_group.
        rber_samples = snap["device_estimated_rber"]["samples"]
        assert len(rber_samples) == monitor.block_groups

    def test_sim_owned_counters_in_same_registry(self, monitored_run):
        monitor, result = monitored_run
        snap = monitor.registry.snapshot()["metrics"]
        assert (
            snap["ftl_block_erases_total"]["samples"][0]["value"]
            == result.metrics.block_erases
        )
        assert "host_latency_us" in snap
        assert (
            snap["host_latency_us"]["samples"][0]["labels"]["request_class"]
            == "read"
        )

    def test_loose_slo_never_breaches(self, monitored_run):
        monitor, _ = monitored_run
        assert monitor.slo.breach_count == 0
        payload = monitor.to_payload()
        assert payload["slo"]["breaches"] == 0

    def test_read_latency_tracks_interval_histogram(self, monitored_run):
        monitor, _ = monitored_run
        busy = [s for s in monitor.snapshots if s.read_latency.get("count")]
        assert busy
        for snap in busy:
            lat = snap.read_latency
            assert lat["p50_us"] <= lat["p99_us"] <= lat["max_us"]


class TestEccTelemetry:
    def test_decode_outcomes_published(self):
        import numpy as np

        from repro.ecc.engine import EccEngine

        registry = MetricsRegistry()
        engine = EccEngine()
        engine.bind_telemetry(registry)
        data = np.zeros(engine.codec_data_bits, dtype=np.uint8)
        clean = engine.encode(data)
        engine.decode(clean)
        flipped = clean.copy()
        flipped[0] ^= 1
        engine.decode(flipped)
        double = clean.copy()
        double[0] ^= 1
        double[1] ^= 1
        engine.decode(double)
        snap = registry.snapshot()["metrics"]
        assert snap["ecc_decodes_total"]["samples"][0]["value"] == 3
        assert snap["ecc_corrected_total"]["samples"][0]["value"] == 1
        assert snap["ecc_uncorrectable_total"]["samples"][0]["value"] == 1
        assert (engine.decodes, engine.corrected, engine.uncorrectable) == (3, 1, 1)


class TestWithoutRegistry:
    def test_monitor_works_bare(self, tiny_scale):
        monitor = HealthMonitor()
        run_workload(ida(0.2), workload("usr_1"), tiny_scale, health=monitor)
        payload = monitor.to_payload()
        assert "registry" not in payload
        assert "slo" not in payload
        assert payload["series"]
