"""Tests for the interval time-series collector (repro.obs.interval)."""

from __future__ import annotations

import pytest

from repro.obs.interval import IntervalCollector, IntervalSnapshot
from repro.sim.engine import SimEngine


class FakeResource:
    """Just enough surface for the collector: busy_us + queued."""

    def __init__(self):
        self.busy_us = 0.0
        self.queued = 0


def bound_collector(interval_us: float = 100.0, n_dies: int = 2):
    engine = SimEngine()
    dies = [FakeResource() for _ in range(n_dies)]
    channels = [FakeResource()]
    collector = IntervalCollector(interval_us)
    collector.bind(engine, dies, channels)
    return engine, dies, channels, collector


class TestIntervalSnapshot:
    def test_throughput(self):
        snap = IntervalSnapshot(start_us=0.0, end_us=1e6, bytes_read=8_000_000)
        assert snap.read_throughput_mb_s() == pytest.approx(8.0)

    def test_zero_duration_has_zero_throughput(self):
        assert IntervalSnapshot(0.0, 0.0, bytes_read=1).read_throughput_mb_s() == 0.0

    def test_to_dict_keys(self):
        d = IntervalSnapshot(0.0, 10.0).to_dict()
        for key in ("start_us", "end_us", "reads_completed", "read_latency",
                    "die_utilisation", "die_queue_depth", "events_processed"):
            assert key in d


class TestIntervalCollector:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            IntervalCollector(0.0)

    def test_start_requires_bind(self):
        with pytest.raises(RuntimeError):
            IntervalCollector(10.0).start()

    def test_one_collector_per_run(self):
        engine, _, _, collector = bound_collector()
        engine.at(500.0, lambda: None)
        collector.start()
        with pytest.raises(RuntimeError):
            collector.start()

    def test_intervals_cover_run_and_close_trailing_partial(self):
        engine, _, _, collector = bound_collector(interval_us=100.0)
        engine.at(250.0, lambda: None)  # run lasts 250 us
        collector.start()
        engine.run()
        collector.finish()
        spans = [(s.start_us, s.end_us) for s in collector.snapshots]
        assert spans == [(0.0, 100.0), (100.0, 200.0), (200.0, 250.0)]

    def test_ticks_do_not_prevent_engine_drain(self):
        engine, _, _, collector = bound_collector(interval_us=10.0)
        engine.at(35.0, lambda: None)
        collector.start()
        engine.run()  # would never return if ticks rescheduled forever
        assert engine.pending == 0

    def test_finish_without_start_is_noop(self):
        _, _, _, collector = bound_collector()
        collector.finish()
        assert collector.snapshots == []

    def test_record_read_lands_in_current_interval(self):
        engine, _, _, collector = bound_collector(interval_us=100.0)

        def complete_read():
            collector.record_read(response_us=42.0, nbytes=4096)

        engine.at(50.0, complete_read)
        engine.at(150.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        first, second = collector.snapshots[0], collector.snapshots[1]
        assert first.reads_completed == 1
        assert first.bytes_read == 4096
        assert first.read_latency["count"] == 1
        assert second.reads_completed == 0
        # Cumulative histogram sees it too.
        assert collector.read_latency_total.count == 1

    def test_record_write(self):
        engine, _, _, collector = bound_collector(interval_us=100.0)
        engine.at(10.0, lambda: collector.record_write(500.0, 8192))
        collector.start()
        engine.run()
        collector.finish()
        assert collector.snapshots[0].writes_completed == 1
        assert collector.snapshots[0].bytes_written == 8192

    def test_utilisation_is_interval_delta(self):
        engine, dies, _, collector = bound_collector(interval_us=100.0, n_dies=2)

        # One die busy for 50 us of the first interval only.
        def occupy():
            dies[0].busy_us += 50.0

        engine.at(60.0, occupy)
        engine.at(180.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        first, second = collector.snapshots[0], collector.snapshots[1]
        # 50 us busy over 2 dies x 100 us interval = 25%.
        assert first.die_utilisation == pytest.approx(0.25)
        assert second.die_utilisation == 0.0

    def test_queue_depth_is_instantaneous(self):
        engine, dies, channels, collector = bound_collector(interval_us=100.0)
        dies[0].queued = 3
        channels[0].queued = 2
        engine.at(150.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        assert collector.snapshots[0].die_queue_depth == 3
        assert collector.snapshots[0].channel_queue_depth == 2

    def test_time_series_and_summary(self):
        engine, _, _, collector = bound_collector(interval_us=100.0)
        engine.at(20.0, lambda: collector.record_read(42.0, 4096))
        engine.at(150.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        series = collector.time_series()
        assert len(series) == len(collector.snapshots)
        assert series[0]["reads_completed"] == 1
        summary = collector.summary()
        assert summary["interval_us"] == 100.0
        assert summary["intervals"] == len(series)
        assert summary["read_latency"]["count"] == 1
        assert summary["peak_read_throughput_mb_s"] > 0
        assert summary["peak_queue_depth"] == 0

    def test_empty_summary(self):
        _, _, _, collector = bound_collector()
        summary = collector.summary()
        assert summary["intervals"] == 0
        assert summary["peak_read_throughput_mb_s"] == 0.0


class TestEdgeCases:
    def test_empty_intervals_still_emitted(self):
        # A long quiet stretch produces empty snapshots, not a gap: the
        # time-series grid stays uniform so plots can trust the x-axis.
        engine, _, _, collector = bound_collector(interval_us=100.0)
        engine.at(50.0, lambda: collector.record_read(42.0, 4096))
        engine.at(450.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        reads = [s.reads_completed for s in collector.snapshots]
        assert reads == [1, 0, 0, 0, 0]  # 4 full intervals + partial tail
        for snap in collector.snapshots[1:]:
            assert snap.read_latency["count"] == 0
            assert snap.bytes_read == 0

    def test_sample_exactly_on_interval_boundary(self):
        # A completion scheduled exactly at a tick time lands in one
        # interval, not both and not neither.
        engine, _, _, collector = bound_collector(interval_us=100.0)
        engine.at(100.0, lambda: collector.record_read(42.0, 4096))
        engine.at(250.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        total = sum(s.reads_completed for s in collector.snapshots)
        assert total == 1
        assert collector.read_latency_total.count == 1
        spans = [(s.start_us, s.end_us) for s in collector.snapshots]
        assert spans == [(0.0, 100.0), (100.0, 200.0), (200.0, 250.0)]

    def test_run_shorter_than_one_interval_closes_single_partial(self):
        engine, _, _, collector = bound_collector(interval_us=1000.0)
        engine.at(42.0, lambda: collector.record_read(10.0, 4096))
        collector.start()
        engine.run()
        collector.finish()
        assert [(s.start_us, s.end_us) for s in collector.snapshots] == [(0.0, 42.0)]
        assert collector.snapshots[0].reads_completed == 1

    def test_run_ending_exactly_on_boundary_has_no_empty_tail(self):
        engine, _, _, collector = bound_collector(interval_us=100.0)
        engine.at(200.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        spans = [(s.start_us, s.end_us) for s in collector.snapshots]
        assert spans == [(0.0, 100.0), (100.0, 200.0)]

    def test_finish_after_drain_does_not_double_close(self):
        engine, _, _, collector = bound_collector(interval_us=100.0)
        engine.at(250.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        count = len(collector.snapshots)
        collector.finish()
        assert len(collector.snapshots) == count


class TestAttachHealth:
    class FakeHealth:
        def __init__(self):
            self.samples = []

        def sample(self, start_us, end_us, read_hist=None):
            self.samples.append((start_us, end_us, read_hist.count))

    def test_health_sampled_once_per_interval_before_reset(self):
        engine, _, _, collector = bound_collector(interval_us=100.0)
        health = self.FakeHealth()
        collector.attach_health(health)
        engine.at(50.0, lambda: collector.record_read(42.0, 4096))
        engine.at(250.0, lambda: None)
        collector.start()
        engine.run()
        collector.finish()
        # Same grid as the snapshots, and the first sample saw this
        # interval's (pre-reset) read histogram.
        assert [(s, e) for s, e, _ in health.samples] == [
            (snap.start_us, snap.end_us) for snap in collector.snapshots
        ]
        assert [n for _, _, n in health.samples] == [1, 0, 0]
