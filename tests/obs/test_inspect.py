"""Tests for trace inspection (repro.obs.inspect)."""

from __future__ import annotations

from repro.obs.inspect import (
    format_trace_summary,
    load_trace,
    summarize_trace,
)
from repro.obs.tracer import SCHEMA_VERSION, JsonlSink, Tracer


def read_span(request_id: int, response_us: float, wait: float = 1.0) -> dict:
    return {
        "kind": "read_span",
        "t_us": 100.0 + request_id,
        "request_id": request_id,
        "arrival_us": float(request_id),
        "response_us": response_us,
        "pages": 1,
        "critical": {
            "queue_wait_us": wait,
            "sense_us": 50.0,
            "transfer_us": 48.0,
            "ecc_us": 20.0,
        },
    }


SAMPLE = [
    {"kind": "trace_header", "t_us": 0.0, "schema": SCHEMA_VERSION},
    {"kind": "run_start", "t_us": 0.0, "mode": "open_loop", "requests": 3},
    read_span(0, 120.0),
    read_span(1, 480.0),
    read_span(2, 240.0),
    {"kind": "gc", "t_us": 50.0, "block": 1, "plane": 0, "moved_pages": 12},
    {"kind": "refresh", "t_us": 60.0, "block": 2, "n_moved": 7},
    {"kind": "ida_adjust", "t_us": 61.0, "block": 2, "wordline": 0},
    {"kind": "run_end", "t_us": 500.0,
     "utilisation": {"die": 0.42, "channel": 0.17}},
]


class TestSummarize:
    def test_event_counts_and_schema(self):
        summary = summarize_trace(SAMPLE)
        assert summary.schema == SCHEMA_VERSION
        assert summary.event_counts["read_span"] == 3
        assert summary.event_counts["gc"] == 1

    def test_slowest_reads_sorted_and_limited(self):
        summary = summarize_trace(SAMPLE, top=2)
        ids = [e["request_id"] for e in summary.slowest_reads]
        assert ids == [1, 2]  # 480 then 240
        assert summary.read_count == 3
        assert summary.mean_read_response_us == (120 + 480 + 240) / 3

    def test_background_totals(self):
        summary = summarize_trace(SAMPLE)
        assert summary.gc_passes == 1
        assert summary.refresh_blocks == 1
        assert summary.refresh_pages_moved == 7
        assert summary.ida_adjusts == 1

    def test_utilisation_from_run_end(self):
        assert summarize_trace(SAMPLE).utilisation == {"die": 0.42,
                                                       "channel": 0.17}

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.read_count == 0
        assert summary.slowest_reads == []


class TestFormat:
    def test_report_mentions_key_sections(self):
        report = format_trace_summary(SAMPLE, top=2)
        assert "read_span" in report
        assert "slowest reads" in report
        assert "480.0" in report
        assert "GC passes" in report
        assert "utilisation" in report
        assert "42.0%" in report

    def test_report_without_reads(self):
        report = format_trace_summary(
            [{"kind": "trace_header", "t_us": 0.0, "schema": SCHEMA_VERSION}]
        )
        assert "no read spans" in report


class TestLoadTrace:
    def test_round_trip_through_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit(1.0, "gc", block=9)
        events = load_trace(path)
        assert [e["kind"] for e in events] == ["trace_header", "gc"]
