"""Tests for trace inspection (repro.obs.inspect)."""

from __future__ import annotations

import pytest

from repro.obs.inspect import (
    TraceLoadError,
    format_last_spans,
    format_trace_summary,
    load_trace,
    load_trace_safe,
    summarize_trace,
)
from repro.obs.tracer import SCHEMA_VERSION, JsonlSink, Tracer


def read_span(request_id: int, response_us: float, wait: float = 1.0) -> dict:
    return {
        "kind": "read_span",
        "t_us": 100.0 + request_id,
        "request_id": request_id,
        "arrival_us": float(request_id),
        "response_us": response_us,
        "pages": 1,
        "critical": {
            "queue_wait_us": wait,
            "sense_us": 50.0,
            "transfer_us": 48.0,
            "ecc_us": 20.0,
        },
    }


SAMPLE = [
    {"kind": "trace_header", "t_us": 0.0, "schema": SCHEMA_VERSION},
    {"kind": "run_start", "t_us": 0.0, "mode": "open_loop", "requests": 3},
    read_span(0, 120.0),
    read_span(1, 480.0),
    read_span(2, 240.0),
    {"kind": "gc", "t_us": 50.0, "block": 1, "plane": 0, "moved_pages": 12},
    {"kind": "refresh", "t_us": 60.0, "block": 2, "n_moved": 7},
    {"kind": "ida_adjust", "t_us": 61.0, "block": 2, "wordline": 0},
    {"kind": "run_end", "t_us": 500.0,
     "utilisation": {"die": 0.42, "channel": 0.17}},
]


class TestSummarize:
    def test_event_counts_and_schema(self):
        summary = summarize_trace(SAMPLE)
        assert summary.schema == SCHEMA_VERSION
        assert summary.event_counts["read_span"] == 3
        assert summary.event_counts["gc"] == 1

    def test_slowest_reads_sorted_and_limited(self):
        summary = summarize_trace(SAMPLE, top=2)
        ids = [e["request_id"] for e in summary.slowest_reads]
        assert ids == [1, 2]  # 480 then 240
        assert summary.read_count == 3
        assert summary.mean_read_response_us == (120 + 480 + 240) / 3

    def test_background_totals(self):
        summary = summarize_trace(SAMPLE)
        assert summary.gc_passes == 1
        assert summary.refresh_blocks == 1
        assert summary.refresh_pages_moved == 7
        assert summary.ida_adjusts == 1

    def test_utilisation_from_run_end(self):
        assert summarize_trace(SAMPLE).utilisation == {"die": 0.42,
                                                       "channel": 0.17}

    def test_empty_trace(self):
        summary = summarize_trace([])
        assert summary.read_count == 0
        assert summary.slowest_reads == []


class TestFormat:
    def test_report_mentions_key_sections(self):
        report = format_trace_summary(SAMPLE, top=2)
        assert "read_span" in report
        assert "slowest reads" in report
        assert "480.0" in report
        assert "GC passes" in report
        assert "utilisation" in report
        assert "42.0%" in report

    def test_report_without_reads(self):
        report = format_trace_summary(
            [{"kind": "trace_header", "t_us": 0.0, "schema": SCHEMA_VERSION}]
        )
        assert "no read spans" in report


class TestLoadTrace:
    def test_round_trip_through_jsonl(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit(1.0, "gc", block=9)
        events = load_trace(path)
        assert [e["kind"] for e in events] == ["trace_header", "gc"]


class TestLoadTraceSafe:
    def write(self, tmp_path, text):
        path = tmp_path / "t.jsonl"
        path.write_text(text)
        return path

    def test_valid_trace_no_warnings(self, tmp_path):
        path = self.write(
            tmp_path, '{"kind": "gc", "t_us": 1.0}\n{"kind": "gc", "t_us": 2.0}\n'
        )
        events, warnings = load_trace_safe(path)
        assert len(events) == 2
        assert warnings == []

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceLoadError, match="not found"):
            load_trace_safe(tmp_path / "nope.jsonl")

    def test_empty_file_is_zero_events(self, tmp_path):
        events, warnings = load_trace_safe(self.write(tmp_path, ""))
        assert events == []
        assert warnings == []

    def test_truncated_final_line_dropped_with_warning(self, tmp_path):
        path = self.write(
            tmp_path, '{"kind": "gc", "t_us": 1.0}\n{"kind": "gc", "t_'
        )
        events, warnings = load_trace_safe(path)
        assert len(events) == 1
        assert len(warnings) == 1
        assert "line 2" in warnings[0]

    def test_garbage_mid_file_raises_with_line_number(self, tmp_path):
        path = self.write(
            tmp_path,
            '{"kind": "gc", "t_us": 1.0}\nnot json\n{"kind": "gc", "t_us": 2.0}\n'
        )
        with pytest.raises(TraceLoadError, match="line 2"):
            load_trace_safe(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = self.write(tmp_path, '\n{"kind": "gc", "t_us": 1.0}\n\n')
        events, warnings = load_trace_safe(path)
        assert len(events) == 1
        assert warnings == []


class TestFormatLastSpans:
    def spans(self):
        events = [read_span(i, 100.0 + i) for i in range(5)]
        events.append({
            "kind": "write_span", "t_us": 300.0, "request_id": 5,
            "arrival_us": 5.0, "response_us": 900.0, "pages": 3,
            "critical": {"queue_wait_us": 10.0, "transfer_us": 48.0,
                         "program_us": 700.0},
        })
        return events

    def test_tail_window_and_order(self):
        report = format_last_spans(self.spans(), last=3)
        assert "last 3 of 6 request spans" in report
        # Completion order: requests 3, 4, then the write (5).
        assert report.index("103.0") < report.index("104.0") < report.index("900.0")
        assert "100.0" not in report

    def test_write_rows_flagged(self):
        report = format_last_spans(self.spans(), last=1)
        lines = report.splitlines()
        assert lines[-1].startswith("W")
        assert "700.0" in lines[-1]

    def test_window_larger_than_trace(self):
        report = format_last_spans(self.spans(), last=100)
        assert "last 6 of 6 request spans" in report

    def test_no_spans(self):
        report = format_last_spans(
            [{"kind": "trace_header", "t_us": 0.0}], last=5
        )
        assert report == "no request spans in trace"

    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError):
            format_last_spans(self.spans(), last=0)
