"""Tests for the event tracer and its sinks (repro.obs.tracer)."""

from __future__ import annotations

import json

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullTracer,
    SCHEMA_VERSION,
    Tracer,
    iter_jsonl_trace,
    read_jsonl_trace,
)


class TestMemorySink:
    def test_records_events_in_order(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.emit(1.0, "gc", block=3)
        tracer.emit(2.0, "refresh", block=4)
        kinds = [e["kind"] for e in sink.events]
        assert kinds == ["trace_header", "gc", "refresh"]
        assert tracer.events_emitted == 2  # header not counted

    def test_header_carries_schema_version(self):
        sink = MemorySink()
        Tracer(sink)
        header = sink.events[0]
        assert header == {"kind": "trace_header", "t_us": 0.0,
                          "schema": SCHEMA_VERSION}

    def test_ring_buffer_keeps_most_recent(self):
        sink = MemorySink(capacity=3)
        tracer = Tracer(sink)
        for i in range(10):
            tracer.emit(float(i), "gc", n=i)
        assert len(sink.events) == 3
        assert [e["n"] for e in sink.events] == [7, 8, 9]

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)

    def test_by_kind_filters(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.emit(1.0, "gc")
        tracer.emit(2.0, "refresh")
        tracer.emit(3.0, "gc")
        assert [e["t_us"] for e in sink.by_kind("gc")] == [1.0, 3.0]


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit(5.0, "read_span", request_id=1, response_us=99.5)
        events = read_jsonl_trace(path)
        assert events[0]["kind"] == "trace_header"
        assert events[0]["schema"] == SCHEMA_VERSION
        assert events[1] == {"kind": "read_span", "t_us": 5.0,
                             "request_id": 1, "response_us": 99.5}

    def test_one_compact_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit(1.0, "gc", block=7)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert " " not in lines[1]  # compact separators
        assert json.loads(lines[1])["block"] == 7

    def test_iter_streams_and_skips_blank_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"kind":"a","t_us":0.0}\n\n{"kind":"b","t_us":1.0}\n')
        assert [e["kind"] for e in iter_jsonl_trace(path)] == ["a", "b"]

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()


class TestNullTracer:
    def test_is_disabled_and_silent(self):
        tracer = NullTracer()
        assert tracer.enabled is False
        tracer.emit(1.0, "gc", block=1)
        tracer.close()
        assert tracer.events_emitted == 0

    def test_shared_singleton_is_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_real_tracer_is_enabled(self):
        assert Tracer(MemorySink()).enabled is True
