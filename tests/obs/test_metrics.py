"""Tests for the typed metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    METRICS_SCHEMA,
    MetricsRegistry,
    labeled_snapshots_to_prometheus,
    merge_snapshots,
    snapshot_to_prometheus,
)


class TestHandles:
    def test_counter_only_goes_up(self):
        counter = MetricsRegistry().counter("ops_total").unlabeled
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_goes_both_ways(self):
        gauge = MetricsRegistry().gauge("depth").unlabeled
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3

    def test_histogram_observe(self):
        family = MetricsRegistry().histogram("lat_us", bounds=(10.0, 100.0))
        family.unlabeled.observe(50.0)
        sample = family.samples()[0]
        assert sample["count"] == 1
        assert sample["bounds_us"] == [10.0, 100.0]


class TestFamilies:
    def test_labels_create_children_on_demand(self):
        family = MetricsRegistry().counter("reads", labels=("die",))
        family.labels(die=0).inc()
        family.labels(die=1).inc(2)
        family.labels(die=0).inc()
        samples = family.samples()
        assert [s["labels"] for s in samples] == [{"die": "0"}, {"die": "1"}]
        assert [s["value"] for s in samples] == [2.0, 2.0]

    def test_wrong_label_set_rejected(self):
        family = MetricsRegistry().counter("reads", labels=("die",))
        with pytest.raises(ValueError):
            family.labels(channel=0)
        with pytest.raises(ValueError):
            family.labels(die=0, channel=0)

    def test_unlabeled_requires_label_less_family(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("reads", labels=("die",)).unlabeled


class TestRegistry:
    def test_redeclare_same_shape_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("ops_total", "help", labels=("die",))
        second = registry.counter("ops_total", "other help", labels=("die",))
        assert first is second

    def test_redeclare_different_kind_or_labels_raises(self):
        registry = MetricsRegistry()
        registry.counter("ops_total")
        with pytest.raises(ValueError):
            registry.gauge("ops_total")
        with pytest.raises(ValueError):
            registry.counter("ops_total", labels=("die",))

    @pytest.mark.parametrize("bad", ["1bad", "sp ace", "dash-ed", ""])
    def test_invalid_metric_names_rejected(self, bad):
        with pytest.raises(ValueError):
            MetricsRegistry().counter(bad)

    @pytest.mark.parametrize("bad", ["1bad", "with:colon", ""])
    def test_invalid_label_names_rejected(self, bad):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("ok", labels=(bad,))

    def test_duplicate_label_names_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("ok", labels=("die", "die"))

    def test_snapshot_shape_and_order(self):
        registry = MetricsRegistry()
        registry.gauge("z_metric").unlabeled.set(1)
        registry.counter("a_metric").unlabeled.inc()
        snap = registry.snapshot()
        assert snap["schema"] == METRICS_SCHEMA
        assert list(snap["metrics"]) == ["a_metric", "z_metric"]
        assert snap["metrics"]["a_metric"]["kind"] == "counter"
        assert snap["metrics"]["a_metric"]["samples"][0]["value"] == 1.0

    def test_snapshot_is_json_serialisable(self):
        import json

        registry = MetricsRegistry()
        registry.histogram("lat_us", labels=("cls",)).labels(cls="read").observe(5)
        json.dumps(registry.snapshot())


class TestMerge:
    def _snap(self, counter=0.0, gauge=0.0, hist=(), bounds=(10.0, 100.0)):
        registry = MetricsRegistry()
        c = registry.counter("ops_total").unlabeled
        c.inc(counter)
        registry.gauge("depth").unlabeled.set(gauge)
        h = registry.histogram("lat_us", bounds=bounds).unlabeled
        for value in hist:
            h.observe(value)
        return registry.snapshot()

    def test_counters_sum_gauges_max_histograms_add(self):
        merged = merge_snapshots(
            [self._snap(2, 5, (20.0,)), self._snap(3, 4, (50.0, 20.0))]
        )
        metrics = merged["metrics"]
        assert metrics["ops_total"]["samples"][0]["value"] == 5.0
        assert metrics["depth"]["samples"][0]["value"] == 5.0
        hist = metrics["lat_us"]["samples"][0]
        assert hist["count"] == 3
        assert hist["min_us"] == 20.0
        assert hist["max_us"] == 50.0

    def test_merge_into_empty_histogram_keeps_min(self):
        merged = merge_snapshots([self._snap(), self._snap(hist=(30.0,))])
        hist = merged["metrics"]["lat_us"]["samples"][0]
        assert hist["min_us"] == 30.0

    def test_disjoint_label_sets_union(self):
        a = MetricsRegistry()
        a.counter("reads", labels=("die",)).labels(die=0).inc()
        b = MetricsRegistry()
        b.counter("reads", labels=("die",)).labels(die=1).inc(2)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        samples = merged["metrics"]["reads"]["samples"]
        assert [s["labels"]["die"] for s in samples] == ["0", "1"]

    def test_mismatched_bucket_bounds_raise(self):
        with pytest.raises(ValueError, match="mismatched"):
            merge_snapshots(
                [self._snap(bounds=(10.0, 100.0)), self._snap(bounds=(10.0,))]
            )

    def test_conflicting_kinds_raise(self):
        a = MetricsRegistry()
        a.counter("x").unlabeled.inc()
        b = MetricsRegistry()
        b.gauge("x").unlabeled.set(1)
        with pytest.raises(ValueError, match="conflicting"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            merge_snapshots([{"schema": 99, "metrics": {}}])


class TestPrometheus:
    def test_scalar_exposition(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", "operations").unlabeled.inc(3)
        text = registry.to_prometheus_text()
        assert "# HELP ops_total operations" in text
        assert "# TYPE ops_total counter" in text
        assert "ops_total 3" in text
        assert text.endswith("\n")

    def test_histogram_exposition_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_us", bounds=(10.0, 100.0)).unlabeled
        hist.observe(5.0)
        hist.observe(50.0)
        hist.observe(500.0)
        lines = registry.to_prometheus_text().splitlines()
        assert 'lat_us_bucket{le="10"} 1' in lines
        assert 'lat_us_bucket{le="100"} 2' in lines
        assert 'lat_us_bucket{le="+Inf"} 3' in lines
        assert "lat_us_count 3" in lines
        assert any(line.startswith("lat_us_sum ") for line in lines)

    def test_extra_labels_injected_and_escaped(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", labels=("die",)).labels(die=0).inc()
        text = registry.to_prometheus_text(extra_labels={"run": 'a"b'})
        assert 'ops_total{die="0",run="a\\"b"} 1' in text

    def test_labeled_snapshots_declare_families_once(self):
        a = MetricsRegistry()
        a.counter("ops_total", "operations").unlabeled.inc(1)
        b = MetricsRegistry()
        b.counter("ops_total", "operations").unlabeled.inc(2)
        text = labeled_snapshots_to_prometheus(
            [({"run": "a"}, a.snapshot()), ({"run": "b"}, b.snapshot())]
        )
        assert text.count("# TYPE ops_total counter") == 1
        assert 'ops_total{run="a"} 1' in text
        assert 'ops_total{run="b"} 2' in text

    def test_labeled_snapshots_conflicting_kind_raises(self):
        a = MetricsRegistry()
        a.counter("x").unlabeled.inc()
        b = MetricsRegistry()
        b.gauge("x").unlabeled.set(1)
        with pytest.raises(ValueError, match="conflicting"):
            labeled_snapshots_to_prometheus(
                [({"run": "a"}, a.snapshot()), ({"run": "b"}, b.snapshot())]
            )

    def test_snapshot_roundtrip_matches_registry_export(self):
        registry = MetricsRegistry()
        registry.gauge("depth", labels=("kind",)).labels(kind="die").set(7)
        assert snapshot_to_prometheus(registry.snapshot()) == (
            registry.to_prometheus_text()
        )
