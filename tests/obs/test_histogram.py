"""Tests for fixed-bucket histograms (repro.obs.histogram)."""

from __future__ import annotations

import pytest

from repro.obs.histogram import Histogram, default_latency_bounds


class TestDefaultBounds:
    def test_log_spaced_and_covering(self):
        bounds = default_latency_bounds(10.0, 1e6, per_decade=8)
        assert bounds[0] == 10.0
        assert bounds[-1] >= 1e6
        # Strictly increasing, constant ratio.
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(abs(r - ratios[0]) < 1e-9 for r in ratios)
        assert ratios[0] == pytest.approx(10 ** (1 / 8))

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            default_latency_bounds(0.0, 100.0)
        with pytest.raises(ValueError):
            default_latency_bounds(100.0, 10.0)
        with pytest.raises(ValueError):
            default_latency_bounds(1.0, 10.0, per_decade=0)


class TestHistogram:
    def test_counts_land_in_right_buckets(self):
        hist = Histogram([10.0, 100.0, 1000.0])
        for value in (5.0, 10.0, 50.0, 500.0, 5000.0):
            hist.add(value)
        # <=10 | <=100 | <=1000 | overflow
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.min == 5.0
        assert hist.max == 5000.0
        assert hist.mean == pytest.approx(5565.0 / 5)

    def test_rejects_negative_values_and_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram([10.0, 5.0])
        with pytest.raises(ValueError):
            Histogram([])
        with pytest.raises(ValueError):
            Histogram([1.0]).add(-0.1)

    def test_percentile_quantises_to_bucket_bound(self):
        hist = Histogram([10.0, 100.0, 1000.0])
        for value in (1.0, 2.0, 3.0, 40.0):
            hist.add(value)
        # p50 -> rank 2 -> lands in the <=10 bucket, reported as its bound.
        assert hist.percentile(50) == 10.0
        # p100 -> the <=100 bucket, capped at the observed max (40).
        assert hist.percentile(100) == 40.0

    def test_percentile_never_exceeds_observed_max(self):
        hist = Histogram([10.0, 100.0])
        hist.add(3.0)
        assert hist.percentile(99) == 3.0  # min(bound=10, max=3)

    def test_overflow_percentile_is_max(self):
        hist = Histogram([10.0])
        hist.add(9999.0)
        assert hist.percentile(50) == 9999.0

    def test_empty_histogram(self):
        hist = Histogram([10.0])
        assert hist.mean == 0.0
        assert hist.percentile(99) == 0.0
        summary = hist.summary()
        assert summary["count"] == 0
        assert summary["max_us"] == 0.0

    def test_percentile_rejects_bad_q(self):
        hist = Histogram([10.0])
        with pytest.raises(ValueError):
            hist.percentile(0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_merge(self):
        a = Histogram([10.0, 100.0])
        b = Histogram([10.0, 100.0])
        a.add(5.0)
        b.add(50.0)
        b.add(500.0)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.min == 5.0
        assert a.max == 500.0

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram([10.0]).merge(Histogram([20.0]))

    def test_values_on_bucket_boundaries_land_inclusive(self):
        # le-semantics: a value exactly on bounds[i] belongs to bucket i,
        # matching the Prometheus cumulative-bucket convention.
        hist = Histogram([10.0, 100.0, 1000.0])
        for value in (10.0, 100.0, 1000.0):
            hist.add(value)
        assert hist.counts == [1, 1, 1, 0]
        hist.add(0.0)  # zero is valid and lands in the first bucket
        assert hist.counts == [2, 1, 1, 0]

    def test_mismatch_errors_name_both_shapes(self):
        with pytest.raises(ValueError, match=r"merge.*1 bounds \[10 \.\. 10\] vs 2 bounds \[20 \.\. 30\]"):
            Histogram([10.0]).merge(Histogram([20.0, 30.0]))
        with pytest.raises(ValueError, match="compare"):
            Histogram([10.0]) == Histogram([20.0])

    def test_eq_same_bounds(self):
        a = Histogram([10.0, 100.0])
        b = Histogram([10.0, 100.0])
        a.add(5.0)
        assert a != b
        b.add(5.0)
        assert a == b

    def test_eq_non_histogram_is_not_implemented(self):
        assert Histogram([10.0]).__eq__(42) is NotImplemented
        assert Histogram([10.0]) != 42

    def test_merge_empty_keeps_min_max(self):
        a = Histogram([10.0])
        a.add(4.0)
        a.merge(Histogram([10.0]))
        assert a.min == 4.0
        assert a.max == 4.0

    def test_summary_and_to_dict_shapes(self):
        hist = Histogram()
        for value in range(100):
            hist.add(float(value) + 11.0)
        summary = hist.summary()
        assert set(summary) == {"count", "mean_us", "p50_us", "p95_us",
                                "p99_us", "max_us"}
        assert summary["p50_us"] <= summary["p95_us"] <= summary["p99_us"]
        dump = hist.to_dict()
        assert len(dump["counts"]) == len(dump["bounds_us"]) + 1
        assert sum(dump["counts"]) == dump["count"] == 100
