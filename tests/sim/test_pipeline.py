"""Tests for the staged op pipeline (repro.sim.pipeline)."""

from __future__ import annotations

import pytest

from repro.flash.timing import TimingSpec
from repro.sim.engine import SimEngine
from repro.sim.pipeline import (
    OpPipeline,
    PageRecord,
    Stage,
    StagePlanner,
    adjust_stages,
    erase_stages,
    read_stages,
    write_stages,
)
from repro.sim.resources import IoPriority, Resource


@pytest.fixture
def engine():
    return SimEngine()


@pytest.fixture
def timing():
    return TimingSpec.tlc_table2()


class TestStageBuilders:
    def test_read_stages_shape(self, engine, timing):
        die = Resource(engine, "die")
        chan = Resource(engine, "chan")
        stages = read_stages(die, chan, timing, senses=2)
        assert [s.name for s in stages] == ["sense", "transfer", "ecc"]
        assert stages[0].resource is die
        assert stages[1].resource is chan
        assert stages[2].resource is None  # latency-only ECC stage
        assert stages[0].duration_us == timing.read_us(2)
        assert stages[1].duration_us == timing.transfer_us
        assert stages[2].duration_us == timing.ecc_decode_us

    def test_read_retry_repeats_sense_and_decode_not_transfer(
        self, engine, timing
    ):
        die = Resource(engine, "die")
        chan = Resource(engine, "chan")
        stages = read_stages(die, chan, timing, senses=1, passes=3)
        assert stages[0].duration_us == timing.read_us(1) * 3
        assert stages[1].duration_us == timing.transfer_us  # once
        assert stages[2].duration_us == timing.ecc_decode_us * 3

    def test_write_stages_shape(self, engine, timing):
        die = Resource(engine, "die")
        chan = Resource(engine, "chan")
        stages = write_stages(die, chan, timing)
        assert [s.name for s in stages] == ["transfer", "program"]
        assert stages[0].resource is chan
        assert stages[1].resource is die

    def test_internal_op_stages(self, engine, timing):
        die = Resource(engine, "die")
        (adjust,) = adjust_stages(die, timing)
        (erase,) = erase_stages(die, timing)
        assert adjust.name == "adjust"
        assert erase.name == "erase"
        assert erase.duration_us == timing.erase_us


class TestStagePlanner:
    def test_caches_identical_read_shapes(self, engine, timing):
        planner = StagePlanner(timing)
        die = Resource(engine, "die")
        chan = Resource(engine, "chan")
        first = planner.read(0, die, chan, senses=2, passes=1)
        again = planner.read(0, die, chan, senses=2, passes=1)
        assert first is again
        other = planner.read(0, die, chan, senses=2, passes=2)
        assert other is not first

    def test_caches_fixed_ops_per_die(self, engine, timing):
        planner = StagePlanner(timing)
        die = Resource(engine, "die")
        chan = Resource(engine, "chan")
        assert planner.write(0, die, chan) is planner.write(0, die, chan)
        assert planner.erase(0, die) is planner.erase(0, die)
        assert planner.adjust(0, die) is planner.adjust(0, die)


class TestOpPipeline:
    def _run(self, engine, stages, record=None):
        done: list[tuple[float, float]] = []
        OpPipeline(
            engine,
            stages,
            IoPriority.HOST_READ,
            IoPriority.HOST_READ,
            lambda s, e: done.append((s, e)),
            record=record,
        ).start()
        engine.run()
        return done

    def test_read_walks_all_stages_on_idle_device(self, engine, timing):
        die = Resource(engine, "die")
        chan = Resource(engine, "chan")
        done = self._run(engine, read_stages(die, chan, timing, senses=1))
        # on_done start = service start of the last *resource* stage
        # (the channel transfer); end includes the trailing ECC latency.
        assert done == [
            (
                timing.read_us(1),
                timing.read_us(1) + timing.transfer_us + timing.ecc_decode_us,
            )
        ]

    def test_record_notes_each_stage(self, engine, timing):
        die = Resource(engine, "die")
        chan = Resource(engine, "chan")
        record = PageRecord(block=1, page=2, senses=1, retries=0, submit_us=0.0)
        self._run(engine, read_stages(die, chan, timing, senses=1), record)
        assert record.sense_us == timing.read_us(1)
        assert record.transfer_us == timing.transfer_us
        assert record.ecc_us == timing.ecc_decode_us
        assert record.queue_wait_us == 0.0  # idle device: no waiting
        assert record.end_us == (
            timing.read_us(1) + timing.transfer_us + timing.ecc_decode_us
        )

    def test_record_accumulates_queue_wait_under_contention(
        self, engine, timing
    ):
        die = Resource(engine, "die")
        chan = Resource(engine, "chan")
        first = PageRecord(0, 0, 1, 0, submit_us=0.0)
        second = PageRecord(0, 1, 1, 0, submit_us=0.0)
        stages = read_stages(die, chan, timing, senses=1)
        done: list[float] = []
        for record in (first, second):
            OpPipeline(
                engine,
                stages,
                IoPriority.HOST_READ,
                IoPriority.HOST_READ,
                lambda s, e: done.append(e),
                record=record,
            ).start()
        engine.run()
        assert first.queue_wait_us == 0.0
        # The second op waits out the first's sense on the die; the
        # channel is free again by the time its transfer is ready.
        assert second.queue_wait_us == pytest.approx(timing.read_us(1))

    def test_latency_only_stage_does_not_queue(self, engine):
        stages = (Stage(None, 7.0, "ecc"), Stage(None, 3.0, "ecc"))
        done = self._run(engine, stages)
        assert done == [(0.0, 10.0)]
        assert engine.now == 10.0

    def test_rejects_empty_stage_tuple(self, engine):
        with pytest.raises(ValueError):
            OpPipeline(
                engine, (), IoPriority.HOST_READ, IoPriority.HOST_READ, lambda s, e: None
            )
