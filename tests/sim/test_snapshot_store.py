"""SnapshotStore: LRU, disk spill, corruption hardening, shm transport."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.experiments.config import RunScale
from repro.experiments.runner import prepare_warm_state
from repro.experiments.systems import ida
from repro.obs.metrics import MetricsRegistry
from repro.sim.snapshot import (
    SNAPSHOT_SCHEMA,
    SnapshotStore,
    WarmHandle,
    WarmState,
    attach_warm_state,
    publish_warm_state,
)
from repro.workloads import TABLE3_WORKLOADS


@pytest.fixture(scope="module")
def warm() -> WarmState:
    return prepare_warm_state(
        ida(0.2), TABLE3_WORKLOADS["usr_1"], RunScale.tiny()
    )


class TestLru:
    def test_capacity_evicts_least_recent(self, warm):
        store = SnapshotStore(capacity=2)
        store.put("a", warm)
        store.put("b", warm)
        assert store.get("a") is warm  # refreshes "a"
        store.put("c", warm)  # evicts "b"
        assert store.get("b") is None
        assert store.get("a") is warm
        assert store.get("c") is warm

    def test_stats_count_hits_misses_stores(self, warm):
        store = SnapshotStore()
        assert store.get("k") is None
        store.put("k", warm)
        assert store.get("k") is warm
        assert store.stats.misses == 1
        assert store.stats.hits == 1
        assert store.stats.stores == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SnapshotStore(capacity=0)


class TestSpill:
    def test_spill_survives_the_store(self, warm, tmp_path):
        SnapshotStore(spill_dir=tmp_path).put("key", warm)
        fresh = SnapshotStore(spill_dir=tmp_path)
        loaded = fresh.get("key")
        assert isinstance(loaded, WarmState)
        assert loaded.device.columns == warm.device.columns
        assert loaded.map_forward == warm.map_forward
        assert fresh.stats.hits == 1

    def test_unconfigured_store_never_touches_disk(self, warm, tmp_path):
        store = SnapshotStore()
        store.put("key", warm)
        assert list(tmp_path.iterdir()) == []

    def test_disk_hit_promotes_into_memory(self, warm, tmp_path):
        SnapshotStore(spill_dir=tmp_path).put("key", warm)
        fresh = SnapshotStore(spill_dir=tmp_path)
        first = fresh.get("key")
        fresh._spill_path("key").unlink()
        assert fresh.get("key") is first  # now served from memory


class TestSpillHardening:
    """Any bad spill file must mean cold preload, never a crash."""

    def _spilled(self, warm, tmp_path) -> SnapshotStore:
        SnapshotStore(spill_dir=tmp_path).put("key", warm)
        return SnapshotStore(spill_dir=tmp_path)

    def test_truncated_payload_falls_back(self, warm, tmp_path):
        store = self._spilled(warm, tmp_path)
        path = store._spill_path("key")
        path.write_bytes(path.read_bytes()[:-64])
        assert store.get("key") is None
        assert store.stats.fallbacks == 1

    def test_truncated_header_falls_back(self, warm, tmp_path):
        store = self._spilled(warm, tmp_path)
        store._spill_path("key").write_bytes(b"IDA")
        assert store.get("key") is None
        assert store.stats.fallbacks == 1

    def test_bad_magic_falls_back(self, warm, tmp_path):
        store = self._spilled(warm, tmp_path)
        path = store._spill_path("key")
        path.write_bytes(b"NOTASNAP" + path.read_bytes()[8:])
        assert store.get("key") is None
        assert store.stats.fallbacks == 1

    def test_flipped_payload_bit_falls_back(self, warm, tmp_path):
        store = self._spilled(warm, tmp_path)
        path = store._spill_path("key")
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))
        assert store.get("key") is None
        assert store.stats.fallbacks == 1

    def test_stale_schema_falls_back(self, warm, tmp_path):
        stale = dataclasses.replace(warm, schema=SNAPSHOT_SCHEMA + 1)
        store = self._spilled(stale, tmp_path)
        store._entries.clear()  # force the disk path
        assert store.get("key") is None
        assert store.stats.fallbacks == 1

    def test_non_warmstate_payload_falls_back(self, warm, tmp_path):
        import hashlib

        store = SnapshotStore(spill_dir=tmp_path)
        payload = pickle.dumps({"not": "a warm state"})
        tmp_path.mkdir(exist_ok=True)
        store._spill_path("key").write_bytes(
            b"IDASNAP1" + hashlib.sha256(payload).digest() + payload
        )
        assert store.get("key") is None
        assert store.stats.fallbacks == 1

    def test_fallback_bumps_registry_counter(self, warm, tmp_path):
        registry = MetricsRegistry()
        store = SnapshotStore(spill_dir=tmp_path, registry=registry)
        store.put("key", warm)
        path = store._spill_path("key")
        path.write_bytes(path.read_bytes()[:-1])
        store._entries.clear()
        assert store.get("key") is None
        counter = registry.counter(
            "snapshot_store_fallbacks_total", ""
        ).unlabeled
        assert counter.value == 1

    def test_missing_file_is_a_plain_miss_not_a_fallback(self, tmp_path):
        store = SnapshotStore(spill_dir=tmp_path)
        assert store.get("nothing") is None
        assert store.stats.fallbacks == 0
        assert store.stats.misses == 1


class TestWarmHandle:
    def test_cache_handle_miss_then_hit(self, warm):
        store = SnapshotStore()
        handle = WarmHandle(store=store, key="k")
        assert handle.fetch() is None
        assert handle.outcome == "miss"
        handle.publish(warm)
        again = WarmHandle(store=store, key="k")
        assert again.fetch() is warm
        assert again.outcome == "hit"

    def test_resolved_handle_is_always_a_hit(self, warm):
        handle = WarmHandle(state=warm)
        assert handle.fetch() is warm
        assert handle.outcome == "hit"

    def test_detached_handle_is_a_miss_and_publish_is_a_noop(self, warm):
        handle = WarmHandle()
        assert handle.fetch() is None
        handle.publish(warm)  # nowhere to go; must not raise


class TestSharedMemory:
    def test_publish_attach_roundtrip(self, warm):
        ref, shm = publish_warm_state(warm)
        try:
            loaded = attach_warm_state(ref)
        finally:
            shm.close()
            shm.unlink()
        assert isinstance(loaded, WarmState)
        assert loaded.device.columns == warm.device.columns
        assert loaded.ftl_rng_state == warm.ftl_rng_state

    def test_corrupted_segment_fails_checksum(self, warm):
        ref, shm = publish_warm_state(warm)
        try:
            shm.buf[ref.size - 1] ^= 0x01
            with pytest.raises(ValueError, match="checksum"):
                attach_warm_state(ref)
        finally:
            shm.close()
            shm.unlink()

    def test_missing_segment_raises_for_cold_fallback(self, warm):
        ref, shm = publish_warm_state(warm)
        shm.close()
        shm.unlink()
        with pytest.raises(Exception):
            attach_warm_state(ref)
