"""Stream admission and idle-drain fast paths of the event engine.

``add_stream`` is the batch backend's admission path: a time-sorted run
of events that bypasses the heap but reserves the exact sequence numbers
per-event ``at()`` calls would have consumed, so the merged firing order
is byte-identical.  These tests pin that equivalence and the error
contract, plus the ``run_until_idle(track_peak=False)`` bookkeeping
trade-off.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import SimEngine


def _record(log: list, tag: str):
    def callback() -> None:
        log.append(tag)

    return callback


class TestStreamOrdering:
    def test_stream_alone_fires_in_time_order(self):
        engine = SimEngine()
        log: list[str] = []
        n = engine.add_stream(
            [(1.0, _record(log, "a")), (2.0, _record(log, "b")), (2.0, _record(log, "c"))]
        )
        assert n == 3
        engine.run()
        assert log == ["a", "b", "c"]
        assert engine.now == 2.0
        assert engine.processed == 3

    def test_stream_merges_against_heap_by_time_then_seq(self):
        """Heap events scheduled BEFORE the stream hold earlier sequence
        numbers, so at equal times they fire first; events scheduled
        after (from callbacks) hold later ones and fire after."""
        engine = SimEngine()
        log: list[str] = []
        engine.at(2.0, _record(log, "heap-before"))
        engine.add_stream([(1.0, _record(log, "s1")), (2.0, _record(log, "s2"))])
        engine.at(2.0, _record(log, "heap-after"))
        engine.run()
        assert log == ["s1", "heap-before", "s2", "heap-after"]

    def test_stream_matches_at_admission_byte_for_byte(self):
        """The equivalence the batch backend relies on: same callbacks,
        same times → identical firing order under either admission."""
        times = [0.0, 0.5, 0.5, 1.5, 1.5, 1.5, 3.0]

        def run(use_stream: bool) -> list[int]:
            engine = SimEngine()
            log: list[int] = []
            # A callback that schedules follow-up work, like dispatches do.
            def make(i: int):
                def callback() -> None:
                    log.append(i)
                    if i % 2 == 0:
                        engine.after(0.25, _record(log, -i))

                return callback

            events = [(t, make(i)) for i, t in enumerate(times)]
            if use_stream:
                engine.add_stream(events)
            else:
                for t, cb in events:
                    engine.at(t, cb)
            engine.run()
            return log

        assert run(use_stream=True) == run(use_stream=False)

    def test_callbacks_may_schedule_past_the_stream_tail(self):
        engine = SimEngine()
        log: list[str] = []

        def chain() -> None:
            log.append("head")
            engine.after(10.0, _record(log, "tail"))

        engine.add_stream([(1.0, chain)])
        engine.run()
        assert log == ["head", "tail"]
        assert engine.now == 11.0


class TestStreamErrors:
    def test_unsorted_stream_rejected(self):
        engine = SimEngine()
        with pytest.raises(ValueError, match="sorted"):
            engine.add_stream([(2.0, lambda: None), (1.0, lambda: None)])

    def test_past_time_rejected(self):
        engine = SimEngine()
        engine.at(5.0, lambda: None)
        engine.run()
        assert engine.now == 5.0
        with pytest.raises(ValueError, match="cannot schedule"):
            engine.add_stream([(1.0, lambda: None)])

    def test_second_stream_before_drain_rejected(self):
        engine = SimEngine()
        engine.add_stream([(1.0, lambda: None)])
        with pytest.raises(RuntimeError, match="not drained"):
            engine.add_stream([(2.0, lambda: None)])

    def test_new_stream_allowed_after_drain(self):
        engine = SimEngine()
        log: list[str] = []
        engine.add_stream([(1.0, _record(log, "first"))])
        engine.run()
        engine.add_stream([(2.0, _record(log, "second"))])
        engine.run()
        assert log == ["first", "second"]


class TestRunUntilIdle:
    def test_counts_stay_exact_without_peak_tracking(self):
        engine = SimEngine()
        for i in range(5):
            engine.at(float(i), lambda: None)
        engine.run_until_idle(track_peak=False)
        assert engine.processed == 5
        assert engine.pending == 0

    def test_peak_tracking_restored_after_fast_drain(self):
        engine = SimEngine()
        engine.at(1.0, lambda: None)
        engine.run_until_idle(track_peak=False)
        # Pushes after the drain must update the high-water mark again.
        before = engine.peak_pending
        engine.at(2.0, lambda: None)
        engine.at(3.0, lambda: None)
        assert engine.peak_pending >= max(before, 2)

    def test_stream_events_bypass_peak_statistic(self):
        engine = SimEngine()
        engine.add_stream([(float(i), lambda: None) for i in range(10)])
        assert engine.pending == 10
        engine.run_until_idle(track_peak=False)
        assert engine.peak_pending == 0
        assert engine.processed == 10
