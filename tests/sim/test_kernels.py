"""Batch-kernel parity: every array kernel must equal its scalar twin.

The batch backend's correctness rests on the kernels in
``repro.sim.kernels`` being *exact* — LUT gathers that cannot diverge
from the scalar models they were built from, and a retry sampler that
consumes the RNG stream draw-for-draw like ``sample_retries``.  These
tests compare against the scalar path elementwise (``==``, not
``allclose``) and check generator-state equality, plus the accel
module's numpy-fallback contract in a numba-free environment.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.flash.errors import RberModel, ReadRetryModel
from repro.flash.timing import TimingSpec
from repro.obs.metrics import MetricsRegistry
from repro.sim import accel, kernels


class TestLatencyLut:
    @pytest.mark.parametrize(
        "timing",
        [TimingSpec.tlc_table2(), TimingSpec.mlc_spec(), TimingSpec.qlc_spec()],
        ids=["tlc", "mlc", "qlc"],
    )
    def test_lut_equals_scalar_model(self, timing):
        lut = kernels.read_latency_lut(timing, max_senses=15)
        assert np.isnan(lut[0])
        for senses in range(1, 16):
            assert lut[senses] == timing.read_us(senses)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError):
            kernels.read_latency_lut(TimingSpec.tlc_table2(), max_senses=0)


class TestFailLut:
    def test_lut_equals_scalar_model(self):
        model = ReadRetryModel(fail_prob=0.45, max_retries=7)
        lut = kernels.page_fail_lut(model, max_senses=8)
        for senses in range(1, 9):
            assert lut[senses] == model.page_fail_prob(senses)

    def test_zero_fail_prob_is_all_zero(self):
        lut = kernels.page_fail_lut(ReadRetryModel(fail_prob=0.0), max_senses=8)
        assert not lut.any()


class TestRetrySampling:
    def test_counts_match_sequential_scalar_calls(self):
        model = ReadRetryModel(fail_prob=0.5, max_retries=7)
        senses = np.array([1, 2, 4, 4, 8, 1, 4, 2, 8, 4], dtype=np.int64)
        scalar_rng = np.random.default_rng(42)
        batch_rng = np.random.default_rng(42)
        expected = np.array(
            [model.sample_retries(scalar_rng, int(s)) for s in senses]
        )
        got = kernels.sample_retry_counts(batch_rng, model, senses)
        assert (got == expected).all()

    def test_rng_stream_state_identical_after_batch(self):
        """The CRN guarantee: a batched run leaves the generator exactly
        where the equivalent scalar run would."""
        model = ReadRetryModel(fail_prob=0.3, max_retries=5)
        senses = np.array([4] * 23, dtype=np.int64)
        scalar_rng = np.random.default_rng(7)
        batch_rng = np.random.default_rng(7)
        for s in senses:
            model.sample_retries(scalar_rng, int(s))
        kernels.sample_retry_counts(batch_rng, model, senses)
        assert scalar_rng.bit_generator.state == batch_rng.bit_generator.state

    def test_zero_fail_prob_consumes_no_draws(self):
        model = ReadRetryModel(fail_prob=0.0)
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        got = kernels.sample_retry_counts(rng, model, np.array([4, 4, 4]))
        assert not got.any()
        assert rng.bit_generator.state == before

    def test_empty_cohort(self):
        model = ReadRetryModel(fail_prob=0.5)
        rng = np.random.default_rng(3)
        got = kernels.sample_retry_counts(rng, model, np.array([], dtype=np.int64))
        assert got.shape == (0,)

    def test_count_leading_failures_stops_at_first_success(self):
        draws = np.array(
            [
                [0.1, 0.1, 0.9, 0.1],  # two failures, then success
                [0.9, 0.1, 0.1, 0.1],  # immediate success
                [0.1, 0.1, 0.1, 0.1],  # all four fail (cap)
            ]
        )
        probs = np.array([0.5, 0.5, 0.5])
        got = kernels.count_leading_failures(draws, probs)
        assert got.tolist() == [2, 0, 4]


class TestServiceTime:
    def test_matches_pipeline_stage_sum(self):
        timing = TimingSpec.tlc_table2()
        senses = np.array([1, 2, 4, 8], dtype=np.int64)
        retries = np.array([0, 1, 2, 7], dtype=np.int64)
        lut = kernels.read_latency_lut(timing, 8)
        got = kernels.read_service_us(
            lut[senses], retries, timing.transfer_us, timing.ecc_decode_us
        )
        for i in range(len(senses)):
            passes = 1 + int(retries[i])
            expected = (
                timing.read_us(int(senses[i])) * passes
                + timing.transfer_us
                + timing.ecc_decode_us * passes
            )
            assert got[i] == expected


class TestRberCurve:
    def test_matches_scalar_over_wear_grid(self):
        model = RberModel()
        pe = np.array([0, 100, 1500, 3000, 9000], dtype=np.int64)
        days = 12.5
        got = kernels.rber_curve(model, pe, days)
        for i, cycles in enumerate(pe):
            assert got[i] == model.rber(int(cycles), days)


class TestAccelFallback:
    def test_counter_falls_back_to_numpy_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMBA", "1")
        assert not accel.accel_active()
        assert accel.leading_failure_counter() is kernels.count_leading_failures

    def test_jitted_counter_matches_numpy_when_available(self):
        if not accel.numba_available():
            pytest.skip("numba not installed in this environment")
        rng = np.random.default_rng(5)
        draws = rng.random((64, 7))
        probs = rng.random(64)
        jitted = accel.leading_failure_counter()
        assert (
            jitted(draws, probs) == kernels.count_leading_failures(draws, probs)
        ).all()

    def test_publish_accel_state_is_once_per_registry(self):
        registry = MetricsRegistry()
        accel.publish_accel_state(registry)
        accel.publish_accel_state(registry)  # second call is a no-op
        gauge = registry.gauge(
            "sim_accel_numba_active",
            "1 when batch-backend kernels run numba-jitted, 0 on numpy fallback",
        )
        assert gauge.unlabeled.value in (0.0, 1.0)

    def test_publish_accel_state_tolerates_none(self):
        accel.publish_accel_state(None)  # must not raise
