"""Tests for scheduling policies (repro.sim.policy)."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimEngine
from repro.sim.policy import (
    POLICIES,
    FcfsPolicy,
    ReadFirstPolicy,
    SchedulingPolicy,
    ThrottledInternalPolicy,
    make_policy,
)
from repro.sim.resources import IoPriority, Resource


class TestRegistry:
    def test_registry_names_match_instances(self):
        for name, cls in POLICIES.items():
            assert cls().name == name

    def test_make_policy_defaults_to_read_first(self):
        assert isinstance(make_policy(None), ReadFirstPolicy)

    def test_make_policy_by_name(self):
        assert isinstance(make_policy("fcfs"), FcfsPolicy)
        assert isinstance(make_policy("throttled"), ThrottledInternalPolicy)

    def test_make_policy_passes_instances_through(self):
        policy = ThrottledInternalPolicy(internal_gap_us=25.0)
        assert make_policy(policy) is policy

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="read-first"):
            make_policy("sjf")

    def test_describe_is_json_ready(self):
        for cls in POLICIES.values():
            desc = cls().describe()
            assert desc["name"] == cls().name


class TestQueueMapping:
    def test_read_first_keeps_one_queue_per_class(self):
        policy = ReadFirstPolicy()
        for klass in IoPriority:
            assert policy.queue_class(klass) is klass

    def test_fcfs_collapses_all_classes_into_one_queue(self):
        policy = FcfsPolicy()
        queues = {policy.queue_class(klass) for klass in IoPriority}
        assert len(queues) == 1

    def test_throttled_validates_gap(self):
        with pytest.raises(ValueError):
            ThrottledInternalPolicy(internal_gap_us=-1.0)

    def test_base_policy_queue_class_is_abstract(self):
        with pytest.raises(NotImplementedError):
            SchedulingPolicy().queue_class(IoPriority.HOST_READ)


class TestFcfsOrderingOnResource:
    def test_fcfs_serves_in_arrival_order(self):
        # Under FCFS mapping, a host read submitted *after* an internal
        # op must not overtake it.
        engine = SimEngine()
        die = Resource(engine, "die")
        policy = FcfsPolicy()
        order: list[str] = []

        def busy() -> None:
            die.submit(IoPriority.INTERNAL, 10.0, lambda s, e: order.append("busy"),
                       queue=policy.queue_class(IoPriority.INTERNAL))

        def internal() -> None:
            die.submit(IoPriority.INTERNAL, 5.0, lambda s, e: order.append("internal"),
                       queue=policy.queue_class(IoPriority.INTERNAL))

        def read() -> None:
            die.submit(IoPriority.HOST_READ, 1.0, lambda s, e: order.append("read"),
                       queue=policy.queue_class(IoPriority.HOST_READ))

        engine.at(0.0, busy)
        engine.at(1.0, internal)
        engine.at(2.0, read)
        engine.run()
        assert order == ["busy", "internal", "read"]

    def test_read_first_lets_read_overtake(self):
        # Same arrival pattern under read-first: the read jumps the
        # queued internal op (but never the in-service one).
        engine = SimEngine()
        die = Resource(engine, "die")
        policy = ReadFirstPolicy()
        order: list[str] = []

        def submit(klass: IoPriority, duration: float, label: str):
            def doit() -> None:
                die.submit(klass, duration, lambda s, e: order.append(label),
                           queue=policy.queue_class(klass))

            return doit

        engine.at(0.0, submit(IoPriority.INTERNAL, 10.0, "busy"))
        engine.at(1.0, submit(IoPriority.INTERNAL, 5.0, "internal"))
        engine.at(2.0, submit(IoPriority.HOST_READ, 1.0, "read"))
        engine.run()
        assert order == ["busy", "read", "internal"]

    def test_accounting_stays_per_dispatch_class_under_fcfs(self):
        # FCFS collapses queues, but wait accounting must still be
        # attributed to the *dispatch* class.
        engine = SimEngine()
        die = Resource(engine, "die")
        policy = FcfsPolicy()
        die.submit(IoPriority.INTERNAL, 10.0, lambda s, e: None,
                   queue=policy.queue_class(IoPriority.INTERNAL))
        die.submit(IoPriority.HOST_READ, 1.0, lambda s, e: None,
                   queue=policy.queue_class(IoPriority.HOST_READ))
        engine.run()
        stats = die.queue_wait_stats()
        assert stats["internal"]["ops"] == 1
        assert stats["host_read"]["ops"] == 1
        assert stats["host_read"]["total_wait_us"] == pytest.approx(10.0)
