"""Tests for contended resources (repro.sim.resources)."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimEngine
from repro.sim.resources import IoPriority, Resource


@pytest.fixture
def engine():
    return SimEngine()


@pytest.fixture
def resource(engine):
    return Resource(engine, "die0")


class TestFcfs:
    def test_single_op_timing(self, engine, resource):
        spans = []
        resource.submit(IoPriority.HOST_READ, 100.0, lambda s, e: spans.append((s, e)))
        engine.run()
        assert spans == [(0.0, 100.0)]

    def test_serial_service(self, engine, resource):
        spans = []
        for _ in range(3):
            resource.submit(
                IoPriority.HOST_READ, 50.0, lambda s, e: spans.append((s, e))
            )
        engine.run()
        assert spans == [(0.0, 50.0), (50.0, 100.0), (100.0, 150.0)]

    def test_busy_accounting(self, engine, resource):
        resource.submit(IoPriority.HOST_READ, 30.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 70.0, lambda s, e: None)
        engine.run()
        assert resource.busy_us == 100.0
        assert resource.utilisation(200.0) == 0.5

    def test_negative_duration_rejected(self, resource):
        with pytest.raises(ValueError):
            resource.submit(IoPriority.HOST_READ, -1.0, lambda s, e: None)


class TestReadFirstScheduling:
    def test_queued_reads_overtake_queued_writes(self, engine, resource):
        order = []
        # Occupy the resource, then queue a write before a read.
        resource.submit(IoPriority.INTERNAL, 10.0, lambda s, e: order.append("internal"))
        resource.submit(IoPriority.HOST_WRITE, 10.0, lambda s, e: order.append("write"))
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: order.append("read"))
        engine.run()
        assert order == ["internal", "read", "write"]

    def test_service_is_non_preemptive(self, engine, resource):
        # A long internal op in service is never interrupted by a read.
        spans = {}
        resource.submit(
            IoPriority.INTERNAL, 1000.0, lambda s, e: spans.setdefault("internal", (s, e))
        )
        engine.at(5.0, lambda: resource.submit(
            IoPriority.HOST_READ, 10.0, lambda s, e: spans.setdefault("read", (s, e))
        ))
        engine.run()
        assert spans["internal"] == (0.0, 1000.0)
        assert spans["read"] == (1000.0, 1010.0)

    def test_priority_classes_drain_in_order(self, engine, resource):
        order = []
        resource.submit(IoPriority.INTERNAL, 1.0, lambda s, e: order.append("head"))
        for label, prio in [
            ("i1", IoPriority.INTERNAL),
            ("w1", IoPriority.HOST_WRITE),
            ("r1", IoPriority.HOST_READ),
            ("i2", IoPriority.INTERNAL),
            ("r2", IoPriority.HOST_READ),
        ]:
            resource.submit(prio, 1.0, lambda s, e, label=label: order.append(label))
        engine.run()
        assert order == ["head", "r1", "r2", "w1", "i1", "i2"]

    def test_queued_count(self, engine, resource):
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        assert resource.queued == 1
        assert resource.is_busy
        engine.run()
        assert resource.queued == 0
        assert not resource.is_busy


class TestQueueWaitStats:
    def test_shape_when_idle(self, resource):
        stats = resource.queue_wait_stats()
        assert set(stats) == {"host_read", "host_write", "internal"}
        for entry in stats.values():
            assert entry == {"ops": 0, "total_wait_us": 0.0,
                             "mean_wait_us": 0.0}

    def test_back_to_back_reads_accumulate_wait(self, engine, resource):
        for _ in range(3):
            resource.submit(IoPriority.HOST_READ, 50.0, lambda s, e: None)
        engine.run()
        reads = resource.queue_wait_stats()["host_read"]
        # First starts at 0, second waits 50, third waits 100.
        assert reads["ops"] == 3
        assert reads["total_wait_us"] == 150.0
        assert reads["mean_wait_us"] == 50.0

    def test_wait_attributed_to_each_priority(self, engine, resource):
        resource.submit(IoPriority.INTERNAL, 100.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_WRITE, 10.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        engine.run()
        stats = resource.queue_wait_stats()
        assert stats["internal"]["total_wait_us"] == 0.0
        assert stats["host_read"]["total_wait_us"] == 100.0   # behind internal
        assert stats["host_write"]["total_wait_us"] == 110.0  # behind both

    def test_only_served_ops_counted(self, engine, resource):
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        # Before the engine runs, only the first dispatched immediately.
        assert resource.queue_wait_stats()["host_read"]["ops"] == 1


class TestWaitClassBreakdown:
    """Who a queued op waited behind, per scheduling policy.

    Ops are submitted through ``policy.queue_class`` exactly as the SSD
    model does, so each case exercises the real policy mapping.  The
    pinned invariant: the ``behind`` + ``inflight`` matrices sum to the
    class's total queue wait, and under read-first the scheduler never
    *starts* a write while a read is queued (``behind_us`` stays zero —
    a read's only write exposure is non-preemptive ``inflight_us``).
    """

    @staticmethod
    def submit_via(resource, policy, klass, duration):
        resource.submit(klass, duration, lambda s, e: None,
                        queue=policy.queue_class(klass))

    @staticmethod
    def total_wait(breakdown, waiter):
        return sum(
            cell["behind_us"] + cell["inflight_us"]
            for cell in breakdown[waiter].values()
        )

    def test_disabled_by_default(self, engine, resource):
        resource.submit(IoPriority.HOST_WRITE, 100.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        engine.run()
        breakdown = resource.wait_class_breakdown()
        assert self.total_wait(breakdown, "host_read") == 0.0

    def test_read_first_reads_never_wait_behind_started_writes(
        self, engine, resource
    ):
        from repro.sim.policy import make_policy

        policy = make_policy("read-first")
        resource.enable_wait_profile()
        # Internal op in service; a write and a read queue behind it.
        self.submit_via(resource, policy, IoPriority.INTERNAL, 1000.0)
        engine.at(5.0, lambda: self.submit_via(
            resource, policy, IoPriority.HOST_WRITE, 50.0))
        engine.at(10.0, lambda: self.submit_via(
            resource, policy, IoPriority.HOST_READ, 10.0))
        engine.run()
        breakdown = resource.wait_class_breakdown()
        read = breakdown["host_read"]
        # The read overtook the queued write: no write service period
        # started during its wait, and none was in flight.
        assert read["host_write"]["behind_us"] == 0.0
        assert read["host_write"]["inflight_us"] == 0.0
        # Its whole wait is the in-service internal op's remainder.
        assert read["internal"]["inflight_us"] == 990.0
        assert self.total_wait(breakdown, "host_read") == 990.0
        # The write waited out the internal remainder (995) plus the
        # read the scheduler preferred (10, a *started* period).
        write = breakdown["host_write"]
        assert write["internal"]["inflight_us"] == 995.0
        assert write["host_read"]["behind_us"] == 10.0
        assert self.total_wait(breakdown, "host_write") == 1005.0

    def test_throttled_keeps_read_first_ordering(self, engine, resource):
        from repro.sim.policy import make_policy

        policy = make_policy("throttled")
        resource.enable_wait_profile()
        self.submit_via(resource, policy, IoPriority.INTERNAL, 1000.0)
        engine.at(5.0, lambda: self.submit_via(
            resource, policy, IoPriority.HOST_WRITE, 50.0))
        engine.at(10.0, lambda: self.submit_via(
            resource, policy, IoPriority.HOST_READ, 10.0))
        engine.run()
        read = resource.wait_class_breakdown()["host_read"]
        assert read["host_write"]["behind_us"] == 0.0
        assert read["host_write"]["inflight_us"] == 0.0

    def test_fcfs_reads_do_wait_behind_started_writes(self, engine, resource):
        from repro.sim.policy import make_policy

        policy = make_policy("fcfs")
        resource.enable_wait_profile()
        # One queue: write in service, a second write queued, then a read.
        self.submit_via(resource, policy, IoPriority.HOST_WRITE, 100.0)
        engine.at(5.0, lambda: self.submit_via(
            resource, policy, IoPriority.HOST_WRITE, 100.0))
        engine.at(10.0, lambda: self.submit_via(
            resource, policy, IoPriority.HOST_READ, 10.0))
        engine.run()
        read = resource.wait_class_breakdown()["host_read"]
        # The queued write started during the read's wait (FCFS chose
        # arrival order): 100 us of *started* write service, plus the
        # 90 us remainder of the write already in flight.
        assert read["host_write"]["behind_us"] == 100.0
        assert read["host_write"]["inflight_us"] == 90.0
        assert self.total_wait(
            resource.wait_class_breakdown(), "host_read") == 190.0

    def test_breakdown_sums_to_queue_wait_stats(self, engine, resource):
        from repro.sim.policy import make_policy

        policy = make_policy("read-first")
        resource.enable_wait_profile()
        for tick in range(8):
            klass = (IoPriority.INTERNAL, IoPriority.HOST_WRITE,
                     IoPriority.HOST_READ)[tick % 3]
            engine.at(tick * 30.0, lambda k=klass: self.submit_via(
                resource, policy, k, 100.0))
        engine.run()
        breakdown = resource.wait_class_breakdown()
        stats = resource.queue_wait_stats()
        for klass in ("host_read", "host_write", "internal"):
            assert self.total_wait(breakdown, klass) == pytest.approx(
                stats[klass]["total_wait_us"], abs=1e-9)

    def test_aggregate_across_resources(self, engine):
        from repro.sim.resources import aggregate_wait_breakdown

        first = Resource(engine, "die0", kind="die", index=0)
        second = Resource(engine, "die1", kind="die", index=1)
        for resource in (first, second):
            resource.enable_wait_profile()
            resource.submit(IoPriority.HOST_WRITE, 100.0, lambda s, e: None)
            resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        engine.run()
        merged = aggregate_wait_breakdown([first, second])
        # Each die exposed its read to a 100 us in-flight write.
        assert merged["host_read"]["host_write"]["inflight_us"] == 200.0
        assert merged["host_read"]["host_write"]["behind_us"] == 0.0
