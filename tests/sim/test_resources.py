"""Tests for contended resources (repro.sim.resources)."""

from __future__ import annotations

import pytest

from repro.sim.engine import SimEngine
from repro.sim.resources import IoPriority, Resource


@pytest.fixture
def engine():
    return SimEngine()


@pytest.fixture
def resource(engine):
    return Resource(engine, "die0")


class TestFcfs:
    def test_single_op_timing(self, engine, resource):
        spans = []
        resource.submit(IoPriority.HOST_READ, 100.0, lambda s, e: spans.append((s, e)))
        engine.run()
        assert spans == [(0.0, 100.0)]

    def test_serial_service(self, engine, resource):
        spans = []
        for _ in range(3):
            resource.submit(
                IoPriority.HOST_READ, 50.0, lambda s, e: spans.append((s, e))
            )
        engine.run()
        assert spans == [(0.0, 50.0), (50.0, 100.0), (100.0, 150.0)]

    def test_busy_accounting(self, engine, resource):
        resource.submit(IoPriority.HOST_READ, 30.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 70.0, lambda s, e: None)
        engine.run()
        assert resource.busy_us == 100.0
        assert resource.utilisation(200.0) == 0.5

    def test_negative_duration_rejected(self, resource):
        with pytest.raises(ValueError):
            resource.submit(IoPriority.HOST_READ, -1.0, lambda s, e: None)


class TestReadFirstScheduling:
    def test_queued_reads_overtake_queued_writes(self, engine, resource):
        order = []
        # Occupy the resource, then queue a write before a read.
        resource.submit(IoPriority.INTERNAL, 10.0, lambda s, e: order.append("internal"))
        resource.submit(IoPriority.HOST_WRITE, 10.0, lambda s, e: order.append("write"))
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: order.append("read"))
        engine.run()
        assert order == ["internal", "read", "write"]

    def test_service_is_non_preemptive(self, engine, resource):
        # A long internal op in service is never interrupted by a read.
        spans = {}
        resource.submit(
            IoPriority.INTERNAL, 1000.0, lambda s, e: spans.setdefault("internal", (s, e))
        )
        engine.at(5.0, lambda: resource.submit(
            IoPriority.HOST_READ, 10.0, lambda s, e: spans.setdefault("read", (s, e))
        ))
        engine.run()
        assert spans["internal"] == (0.0, 1000.0)
        assert spans["read"] == (1000.0, 1010.0)

    def test_priority_classes_drain_in_order(self, engine, resource):
        order = []
        resource.submit(IoPriority.INTERNAL, 1.0, lambda s, e: order.append("head"))
        for label, prio in [
            ("i1", IoPriority.INTERNAL),
            ("w1", IoPriority.HOST_WRITE),
            ("r1", IoPriority.HOST_READ),
            ("i2", IoPriority.INTERNAL),
            ("r2", IoPriority.HOST_READ),
        ]:
            resource.submit(prio, 1.0, lambda s, e, label=label: order.append(label))
        engine.run()
        assert order == ["head", "r1", "r2", "w1", "i1", "i2"]

    def test_queued_count(self, engine, resource):
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        assert resource.queued == 1
        assert resource.is_busy
        engine.run()
        assert resource.queued == 0
        assert not resource.is_busy


class TestQueueWaitStats:
    def test_shape_when_idle(self, resource):
        stats = resource.queue_wait_stats()
        assert set(stats) == {"host_read", "host_write", "internal"}
        for entry in stats.values():
            assert entry == {"ops": 0, "total_wait_us": 0.0,
                             "mean_wait_us": 0.0}

    def test_back_to_back_reads_accumulate_wait(self, engine, resource):
        for _ in range(3):
            resource.submit(IoPriority.HOST_READ, 50.0, lambda s, e: None)
        engine.run()
        reads = resource.queue_wait_stats()["host_read"]
        # First starts at 0, second waits 50, third waits 100.
        assert reads["ops"] == 3
        assert reads["total_wait_us"] == 150.0
        assert reads["mean_wait_us"] == 50.0

    def test_wait_attributed_to_each_priority(self, engine, resource):
        resource.submit(IoPriority.INTERNAL, 100.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_WRITE, 10.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        engine.run()
        stats = resource.queue_wait_stats()
        assert stats["internal"]["total_wait_us"] == 0.0
        assert stats["host_read"]["total_wait_us"] == 100.0   # behind internal
        assert stats["host_write"]["total_wait_us"] == 110.0  # behind both

    def test_only_served_ops_counted(self, engine, resource):
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        resource.submit(IoPriority.HOST_READ, 10.0, lambda s, e: None)
        # Before the engine runs, only the first dispatched immediately.
        assert resource.queue_wait_stats()["host_read"]["ops"] == 1
