"""Property-based tests for resource scheduling invariants."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.sim.engine import SimEngine
from repro.sim.resources import IoPriority, Resource


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(list(IoPriority)),
            st.floats(min_value=0.1, max_value=100.0),
            st.floats(min_value=0.0, max_value=500.0),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_service_intervals_never_overlap(ops):
    """No two operations are ever in service simultaneously."""
    engine = SimEngine()
    resource = Resource(engine, "r")
    spans: list[tuple[float, float]] = []
    for priority, duration, submit_at in ops:
        engine.at(
            submit_at,
            lambda p=priority, d=duration: resource.submit(
                p, d, lambda s, e: spans.append((s, e))
            ),
        )
    engine.run()
    assert len(spans) == len(ops)
    ordered = sorted(spans)
    for (s1, e1), (s2, e2) in zip(ordered, ordered[1:]):
        assert e1 <= s2 + 1e-9, "overlapping service intervals"


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(list(IoPriority)),
            st.floats(min_value=0.1, max_value=50.0),
        ),
        min_size=1,
        max_size=25,
    )
)
def test_work_is_conserved(ops):
    """Total busy time equals the sum of all durations (no lost ops)."""
    engine = SimEngine()
    resource = Resource(engine, "r")
    done = []
    for priority, duration in ops:
        resource.submit(priority, duration, lambda s, e: done.append(e - s))
    engine.run()
    assert len(done) == len(ops)
    assert abs(sum(done) - sum(d for _, d in ops)) < 1e-6
    assert abs(resource.busy_us - sum(d for _, d in ops)) < 1e-6


@settings(max_examples=40, deadline=None)
@given(
    n_reads=st.integers(min_value=1, max_value=10),
    n_internal=st.integers(min_value=1, max_value=10),
)
def test_reads_never_wait_behind_queued_internal_ops(n_reads, n_internal):
    """With everything queued at once, all reads finish before any queued
    internal op starts (only the op already in service can block them)."""
    engine = SimEngine()
    resource = Resource(engine, "r")
    order: list[str] = []
    resource.submit(IoPriority.INTERNAL, 5.0, lambda s, e: order.append("head"))
    for _ in range(n_internal):
        resource.submit(IoPriority.INTERNAL, 5.0, lambda s, e: order.append("i"))
    for _ in range(n_reads):
        resource.submit(IoPriority.HOST_READ, 5.0, lambda s, e: order.append("r"))
    engine.run()
    assert order[0] == "head"
    reads_done = order[1 : 1 + n_reads]
    assert reads_done == ["r"] * n_reads
