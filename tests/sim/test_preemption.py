"""Read-first ordering at a contended die (Table II scheduling).

End-to-end checks through the full simulator (FTL dispatch -> policy ->
pipeline -> resources): a queued host read overtakes queued host writes
*and* queued internal refresh traffic, while the operation already in
service is never suspended (scheduling is non-preemptive).
"""

from __future__ import annotations

import pytest

from repro.core import conventional_tlc
from repro.flash.geometry import Geometry
from repro.flash.timing import TimingSpec
from repro.ftl.refresh import RefreshMode, RefreshPolicy
from repro.obs.tracer import MemorySink, Tracer
from repro.sim.resources import IoPriority
from repro.sim.scheduler import HostRequest
from repro.sim.ssd import SsdSimulator


def _single_die_sim(policy=None, tracer=None):
    # One channel, one die: every op contends for the same resources.
    geometry = Geometry(
        channels=1,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=12,
    )
    return SsdSimulator(
        geometry=geometry,
        timing=TimingSpec.tlc_table2(),
        coding=conventional_tlc(),
        refresh_policy=RefreshPolicy(mode=RefreshMode.BASELINE, period_us=1e9),
        seed=5,
        policy=policy,
        tracer=tracer,
    )


def _read(request_id, time, lpns, page_bytes=8192):
    return HostRequest(request_id, time, True, tuple(lpns), len(lpns) * page_bytes)


def _write(request_id, time, lpns, page_bytes=8192):
    return HostRequest(request_id, time, False, tuple(lpns), len(lpns) * page_bytes)


class TestReadFirstOrdering:
    def test_queued_read_overtakes_queued_write(self):
        # t=0: write W0 (channel transfer, then die busy until 2348).
        # t=10: write W1 transfers and queues its program behind W0's.
        # t=100: read R queues at the busy die, behind W1's program.
        # Read-first: R's sense runs before W1's program.
        sim = _single_die_sim()
        sim.preload([0, 1, 2, 3], -100.0, 0.0)
        metrics = sim.run_requests(
            [
                _write(0, 0.0, [1]),
                _write(1, 10.0, [2]),
                _read(2, 100.0, [0]),
            ]
        )
        timing = sim.timing
        w0_end = timing.transfer_us + timing.program_us  # 2348
        # R waits for W0's program, then senses immediately: response =
        # (w0_end - arrival) + sense + transfer + ecc + host.
        expected_read = (
            (w0_end - 100.0)
            + timing.read_us(1)
            + timing.transfer_us
            + timing.ecc_decode_us
            + timing.host_overhead_us
        )
        assert metrics.read_response.mean_us == pytest.approx(expected_read)
        # W1 programs only after R's sense released the die.
        w1_program_start = w0_end + timing.read_us(1)
        expected_w1 = (
            w1_program_start + timing.program_us + timing.host_overhead_us - 10.0
        )
        assert metrics.write_response.max_us == pytest.approx(expected_w1)

    def test_in_service_op_is_never_suspended(self):
        # The read arrives mid-way into W0's 2.3 ms program (which began
        # at t=48, after the channel transfer); non-preemptive scheduling
        # means it cannot start before the program finishes.
        sim = _single_die_sim()
        sim.preload([0, 1], -100.0, 0.0)
        metrics = sim.run_requests([_write(0, 0.0, [1]), _read(1, 100.0, [0])])
        timing = sim.timing
        w0_end = timing.transfer_us + timing.program_us
        min_response = (
            (w0_end - 100.0)
            + timing.read_us(1)
            + timing.transfer_us
            + timing.ecc_decode_us
            + timing.host_overhead_us
        )
        assert metrics.read_response.mean_us == pytest.approx(min_response)

    def test_read_overtakes_queued_internal_refresh_traffic(self):
        # Saturate the die with a chained internal sequence, then land a
        # host read: under read-first it waits out at most the op in
        # service, not the whole chain.
        sink = MemorySink()
        sim = _single_die_sim(tracer=Tracer(sink))
        sim.preload([0], -100.0, 0.0)
        from repro.ftl.ops import OpKind, PhysOp

        internal = [
            PhysOp(kind=OpKind.ERASE, block_index=b, page=None, senses=0)
            for b in range(4, 8)
        ]
        sim.engine.at(0.0, lambda: sim.issue_internal_sequence(internal))
        metrics = sim.run_requests([_read(0, 10.0, [0])])
        timing = sim.timing
        # The chain issues erase #2 the instant #1 completes — but the
        # read queued meanwhile wins the die first.
        expected = (
            (timing.erase_us - 10.0)
            + timing.read_us(1)
            + timing.transfer_us
            + timing.ecc_decode_us
            + timing.host_overhead_us
        )
        assert metrics.read_response.mean_us == pytest.approx(expected)

    def test_fcfs_makes_the_same_read_wait_out_the_whole_backlog(self):
        # Control arm: under FCFS the read queues behind both writes.
        sim = _single_die_sim(policy="fcfs")
        sim.preload([0, 1, 2, 3], -100.0, 0.0)
        metrics = sim.run_requests(
            [
                _write(0, 0.0, [1]),
                _write(1, 10.0, [2]),
                _read(2, 100.0, [0]),
            ]
        )
        timing = sim.timing
        w0_end = timing.transfer_us + timing.program_us
        w1_end = w0_end + timing.program_us  # transfer overlapped W0
        expected_read = (
            (w1_end - 100.0)
            + timing.read_us(1)
            + timing.transfer_us
            + timing.ecc_decode_us
            + timing.host_overhead_us
        )
        assert metrics.read_response.mean_us == pytest.approx(expected_read)


class TestQueueWaitAttribution:
    def test_die_wait_lands_on_the_waiting_class(self):
        sim = _single_die_sim()
        sim.preload([0, 1], -100.0, 0.0)
        sim.run_requests([_write(0, 0.0, [1]), _read(1, 100.0, [0])])
        stats = sim.queue_wait_report()["die"]
        assert stats["host_read"]["ops"] == 1
        assert stats["host_read"]["total_wait_us"] > 0.0
        assert stats["host_write"]["total_wait_us"] == 0.0
        assert IoPriority.HOST_READ < IoPriority.HOST_WRITE  # sanity
