"""Determinism: same seed + config => bit-identical runs.

The whole experimental method rests on this property — paired
baseline/IDA comparisons, golden-parity pins, and regression bisection
all assume a run is a pure function of (config, seed).  Two full runs
must agree on every metric *and* on the complete trace event stream
(ordering included), traced or not.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import RunScale
from repro.experiments.reporting import metrics_summary
from repro.experiments.runner import run_workload
from repro.experiments.systems import baseline, ida
from repro.obs.tracer import MemorySink, Tracer
from repro.workloads import TABLE3_WORKLOADS


def _run(system, traced: bool):
    sink = MemorySink() if traced else None
    tracer = Tracer(sink) if traced else None
    result = run_workload(
        system,
        TABLE3_WORKLOADS["usr_1"],
        scale=RunScale.tiny(),
        seed=11,
        tracer=tracer,
    )
    events = sink.events if sink is not None else []
    return metrics_summary(result.metrics), events


@pytest.mark.parametrize("system", [baseline(), ida(0.2)], ids=lambda s: s.name)
def test_identical_metrics_and_trace_across_runs(system):
    first_metrics, first_events = _run(system, traced=True)
    second_metrics, second_events = _run(system, traced=True)
    assert first_metrics == second_metrics
    assert first_events == second_events


def test_tracing_does_not_perturb_the_simulation():
    # Observability must be passive: the traced run's metrics match the
    # untraced run's exactly.
    traced, _ = _run(ida(0.2), traced=True)
    untraced, _ = _run(ida(0.2), traced=False)
    assert traced == untraced


def test_policies_are_deterministic_too():
    for policy in ("fcfs", "throttled"):
        system = ida(0.2).with_policy(policy)
        first, _ = _run(system, traced=False)
        second, _ = _run(system, traced=False)
        assert first == second
