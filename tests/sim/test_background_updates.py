"""Tests for the background-update stream (trace-sampling support)."""

from __future__ import annotations

import pytest

from repro.core import conventional_tlc
from repro.flash.geometry import Geometry
from repro.flash.timing import TimingSpec
from repro.ftl.refresh import RefreshMode, RefreshPolicy
from repro.sim.scheduler import HostRequest
from repro.sim.ssd import SsdSimulator


def _sim(period_us=1e9):
    geometry = Geometry(
        channels=1, chips_per_channel=1, dies_per_chip=1, planes_per_die=2,
        blocks_per_plane=8, pages_per_block=12,
    )
    return SsdSimulator(
        geometry=geometry,
        timing=TimingSpec.tlc_table2(),
        coding=conventional_tlc(),
        refresh_policy=RefreshPolicy(mode=RefreshMode.IDA, period_us=period_us),
        seed=3,
    )


def _read(i, t, lpn):
    return HostRequest(i, t, True, (lpn,), 8192)


class TestBackgroundUpdates:
    def test_batches_apply_at_their_times(self):
        sim = _sim()
        sim.preload(range(12), -100.0, 0.0)
        ppn_before = sim.ftl.map.lookup(3)
        sim.run_requests(
            [_read(0, 0.0, 0), _read(1, 50_000.0, 0)],
            background_updates=[(10_000.0, [3, 4])],
        )
        # The update relocated lpn 3 without any timed write op.
        assert sim.ftl.map.lookup(3) != ppn_before
        assert sim.metrics.write_response.count == 0

    def test_updates_create_invalid_pages_for_refresh(self):
        sim = _sim(period_us=30_000.0)
        sim.preload(range(24), -40_000.0, -35_000.0)  # already refresh-due
        sim.run_requests(
            [_read(i, i * 10_000.0, i % 24) for i in range(12)],
            background_updates=[(1.0, list(range(0, 24, 3)))],
        )
        assert sim.metrics.refresh_invocations > 0
        # Wordlines whose lower pages went invalid were IDA-adjusted.
        assert sim.metrics.refresh_adjusted_wordlines > 0

    def test_untimed_updates_do_not_occupy_resources(self):
        sim = _sim()
        sim.preload(range(12), -100.0, 0.0)
        sim.run_requests(
            [_read(0, 0.0, 0)],
            background_updates=[(5.0, list(range(12)))],
        )
        # Only the single host read touched the dies: one sense.
        total_busy = sum(die.busy_us for die in sim.dies)
        assert total_busy == pytest.approx(50.0)
