"""Execution-backend parity: batch must be invisible in the results.

The backend registry's contract (``repro.sim.backends``) is that a
backend is a pure wall-clock knob: reference and batch runs of the same
seeded unit produce byte-identical metrics, block censuses and trace
streams.  These are property-style checks — a seeded RNG draws small
workload/policy/fault combinations and every drawn cell must agree
exactly, inline and on a 4-worker pool.
"""

from __future__ import annotations

import dataclasses
import json
import random

import pytest

from repro.experiments.config import RunScale
from repro.experiments.parallel import RunUnit, execute_units
from repro.experiments.reporting import metrics_summary
from repro.experiments.runner import run_workload, run_workload_closed_loop
from repro.experiments.systems import baseline, ida
from repro.faults import FaultPlan
from repro.obs.tracer import MemorySink, Tracer
from repro.workloads import workload

POLICIES = ("read-first", "fcfs", "throttled")
TRACES = ("hm_1", "usr_1", "stg_1", "src1_0")


def _tiny_fault_plan(seed: int) -> FaultPlan:
    scale = RunScale.tiny()
    return FaultPlan.generate(
        seed=seed,
        duration_us=50_000.0,
        total_blocks=scale.blocks_per_plane * 4,
        program_fails=2,
        grown_bad=1,
        uncorrectable_reads=3,
        adjust_interrupts=1,
        max_program_ordinal=scale.num_requests // 2,
        max_read_ordinal=scale.num_requests,
        read_reclaim_threshold=12,
        name=f"backend-parity-{seed}",
    )


def _fingerprint(result) -> str:
    """Canonical byte string of everything a run reports."""
    return json.dumps(
        {
            "metrics": metrics_summary(result.metrics),
            "in_use_blocks": result.in_use_blocks,
            "ida_blocks": result.ida_blocks,
            "refresh": [
                dataclasses.asdict(report) for report in result.refresh_reports
            ],
            "faults": result.faults,
        },
        sort_keys=True,
    )


def _drawn_cells(seed: int, count: int) -> list[tuple]:
    """Seeded draw of (trace, policy, faulted, seed) property cells."""
    rng = random.Random(seed)
    cells = []
    for _ in range(count):
        cells.append(
            (
                rng.choice(TRACES),
                rng.choice(POLICIES),
                rng.random() < 0.5,
                rng.randrange(1, 1000),
            )
        )
    return cells


class TestOpenLoopParity:
    @pytest.mark.parametrize("cell", _drawn_cells(seed=2018, count=5))
    def test_random_cells_are_byte_identical(self, cell):
        trace, policy, faulted, seed = cell
        system = ida(0.2).with_policy(policy)
        faults = _tiny_fault_plan(seed) if faulted else None
        results = {
            name: run_workload(
                system,
                workload(trace),
                RunScale.tiny(),
                seed=seed,
                faults=faults,
                backend=name,
            )
            for name in ("reference", "batch")
        }
        assert _fingerprint(results["reference"]) == _fingerprint(
            results["batch"]
        ), f"backend divergence on cell {cell}"

    def test_baseline_system_parity(self):
        results = {
            name: run_workload(
                baseline(), workload("usr_1"), RunScale.tiny(), seed=11, backend=name
            )
            for name in ("reference", "batch")
        }
        assert _fingerprint(results["reference"]) == _fingerprint(
            results["batch"]
        )


class TestClosedLoopParity:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_policies_are_byte_identical(self, policy):
        results = {
            name: run_workload_closed_loop(
                ida(0.2).with_policy(policy),
                workload("hm_1"),
                RunScale.tiny(),
                queue_depth=16,
                seed=7,
                backend=name,
            )
            for name in ("reference", "batch")
        }
        assert _fingerprint(results["reference"]) == _fingerprint(
            results["batch"]
        )


class TestTraceStreamParity:
    def test_trace_events_are_byte_identical(self):
        """With tracing on, the batch backend reverts to tracked
        admission, so even engine-internal fields (processed event
        counts, peak pending) must match event-for-event."""
        streams = {}
        for name in ("reference", "batch"):
            sink = MemorySink()
            run_workload(
                ida(0.2),
                workload("hm_1"),
                RunScale.tiny(),
                seed=11,
                tracer=Tracer(sink),
                backend=name,
            )
            streams[name] = [
                json.dumps(event, sort_keys=True) for event in sink.events
            ]
        assert streams["reference"] == streams["batch"]
        assert len(streams["reference"]) > 10  # the trace actually recorded


class TestPooledParity:
    def test_inline_vs_four_workers_on_both_backends(self):
        """`backend` and `jobs` compose: every (backend, jobs) combination
        of the same unit grid reports identical payload summaries."""
        units = {
            name: [
                RunUnit(
                    ida(0.2).with_policy(policy),
                    trace,
                    RunScale.tiny(),
                    seed=11,
                    backend=name,
                )
                for trace in ("hm_1", "usr_1")
                for policy in ("read-first", "fcfs")
            ]
            for name in ("reference", "batch")
        }
        outcomes = {
            (name, jobs): execute_units(units[name], jobs=jobs)
            for name in ("reference", "batch")
            for jobs in (1, 4)
        }
        canonical = [
            json.dumps(p.metrics_summary(), sort_keys=True)
            for p in outcomes[("reference", 1)]
        ]
        for key, payloads in outcomes.items():
            got = [
                json.dumps(p.metrics_summary(), sort_keys=True)
                for p in payloads
            ]
            assert got == canonical, f"divergence at {key}"
