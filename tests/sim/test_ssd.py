"""Tests for the SSD simulator (repro.sim.ssd)."""

from __future__ import annotations

import pytest

from repro.core import conventional_tlc
from repro.flash.errors import ReadRetryModel
from repro.flash.geometry import Geometry
from repro.flash.timing import TimingSpec
from repro.ftl.refresh import RefreshMode, RefreshPolicy
from repro.sim.scheduler import HostRequest
from repro.sim.ssd import SsdSimulator


def _geometry():
    return Geometry(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=1,
        blocks_per_plane=8,
        pages_per_block=12,
    )


def _simulator(refresh_mode=RefreshMode.BASELINE, retry=None, period_us=1e9):
    return SsdSimulator(
        geometry=_geometry(),
        timing=TimingSpec.tlc_table2(),
        coding=conventional_tlc(),
        refresh_policy=RefreshPolicy(mode=refresh_mode, period_us=period_us),
        retry_model=retry,
        seed=5,
    )


def _read(request_id, time, lpns, page_bytes=8192):
    return HostRequest(request_id, time, True, tuple(lpns), len(lpns) * page_bytes)


def _write(request_id, time, lpns, page_bytes=8192):
    return HostRequest(request_id, time, False, tuple(lpns), len(lpns) * page_bytes)


class TestSingleOpLatencies:
    def test_lsb_read_latency_is_exact(self):
        # LSB read on an idle device: 50 (sense) + 48 (transfer) +
        # 20 (ECC) + 5 (host) = 123 us.
        sim = _simulator()
        sim.preload([0, 1], -100.0, 0.0)
        metrics = sim.run_requests([_read(0, 0.0, [0])])
        assert metrics.read_response.mean_us == pytest.approx(123.0)

    def test_csb_and_msb_latencies(self):
        # With 2 planes, lpns 0-1 are LSB pages, 2-3 CSB, 4-5 MSB.
        sim = _simulator()
        sim.preload(range(6), -100.0, 0.0)
        metrics = sim.run_requests(
            [_read(0, 0.0, [2]), _read(1, 10_000.0, [4])]
        )
        latencies = sorted(
            (metrics.read_response.percentile(50), metrics.read_response.max_us)
        )
        assert latencies[0] == pytest.approx(173.0)  # CSB: 100+48+20+5
        assert latencies[1] == pytest.approx(223.0)  # MSB: 150+48+20+5

    def test_write_latency_is_exact(self):
        # Write: 48 (transfer) + 2300 (program) + 5 (host) = 2353 us.
        sim = _simulator()
        metrics = sim.run_requests([_write(0, 0.0, [0])])
        assert metrics.write_response.mean_us == pytest.approx(2353.0)

    def test_parallel_pages_across_planes_overlap(self):
        # Two LSB pages on different dies complete together.
        sim = _simulator()
        sim.preload([0, 1], -100.0, 0.0)
        metrics = sim.run_requests([_read(0, 0.0, [0, 1])])
        assert metrics.read_response.mean_us == pytest.approx(123.0)

    def test_same_die_pages_serialise_on_the_die(self):
        # lpns 0 and 2 share plane/die 0: second sense waits for first.
        sim = _simulator()
        sim.preload(range(4), -100.0, 0.0)
        metrics = sim.run_requests([_read(0, 0.0, [0, 2])])
        # die: 50 then 100 -> CSB transfer ends at 150+48, +20 +5 = 223.
        assert metrics.read_response.mean_us == pytest.approx(223.0)


class TestReadRetry:
    def test_retries_inflate_latency(self):
        # Read MSB pages (4 senses = the reference count, so the failure
        # probability is the configured 0.9) many times.
        requests = [_read(i, i * 10_000.0, [4]) for i in range(20)]
        slow = _simulator(retry=ReadRetryModel(fail_prob=0.9, max_retries=3))
        slow.preload(range(6), -100.0, 0.0)
        m_slow = slow.run_requests(list(requests))

        fast = _simulator(retry=ReadRetryModel(fail_prob=0.0))
        fast.preload(range(6), -100.0, 0.0)
        m_fast = fast.run_requests(list(requests))

        assert m_slow.read_response.mean_us > m_fast.read_response.mean_us
        assert m_slow.read_retries > 0
        assert m_fast.read_retries == 0

    def test_fewer_senses_retry_less_often(self):
        # The per-sense failure model: a 1-sense (LSB / IDA) page fails
        # its decode far less often than the 4-sense reference page.
        import numpy as np

        model = ReadRetryModel(fail_prob=0.6)
        assert model.page_fail_prob(1) < model.page_fail_prob(2)
        assert model.page_fail_prob(2) < model.page_fail_prob(4)
        assert model.page_fail_prob(4) == pytest.approx(0.6)
        rng = np.random.default_rng(0)
        lsb = sum(model.sample_retries(rng, senses=1) for _ in range(3000))
        rng = np.random.default_rng(0)
        msb = sum(model.sample_retries(rng, senses=4) for _ in range(3000))
        assert lsb < msb


class TestAccounting:
    def test_bytes_counted(self):
        sim = _simulator()
        sim.preload(range(4), -100.0, 0.0)
        metrics = sim.run_requests(
            [_read(0, 0.0, [0, 1]), _write(1, 100.0, [2])]
        )
        assert metrics.bytes_read == 2 * 8192
        assert metrics.bytes_written == 8192

    def test_read_mix_recorded(self):
        sim = _simulator()
        sim.preload(range(6), -100.0, 0.0)
        metrics = sim.run_requests([_read(0, 0.0, [0, 2, 4])])
        assert metrics.read_mix.total == 3
        assert metrics.read_mix.by_type == {0: 1, 1: 1, 2: 1}

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            _simulator().run_requests([])


class TestRefreshDaemonTiming:
    def test_refresh_runs_during_trace(self):
        sim = _simulator(RefreshMode.IDA, period_us=1000.0)
        # Fill one full block per plane, aged past the refresh period.
        sim.preload(range(24), -2000.0, -1500.0)
        requests = [_read(i, i * 500.0, [i % 24]) for i in range(20)]
        metrics = sim.run_requests(requests)
        assert metrics.refresh_invocations > 0
        assert metrics.refresh_adjusted_wordlines > 0

    def test_refresh_ops_occupy_resources(self):
        sim = _simulator(RefreshMode.BASELINE, period_us=1000.0)
        sim.preload(range(24), -2000.0, -1500.0)
        busy_before = sum(d.busy_us for d in sim.dies)
        requests = [_read(0, 0.0, [0]), _read(1, 50_000.0, [1])]
        sim.run_requests(requests)
        busy_after = sum(d.busy_us for d in sim.dies)
        # Refresh moved ~24 pages through reads+writes: serious die time.
        assert busy_after - busy_before > 24 * 2300 * 0.5


class TestClosedLoop:
    def test_closed_loop_completes_all(self):
        sim = _simulator()
        sim.preload(range(12), -100.0, 0.0)
        requests = [_read(i, 0.0, [i % 12]) for i in range(40)]
        metrics = sim.run_closed_loop(requests, queue_depth=4)
        assert metrics.read_response.count == 40
        assert metrics.throughput_mb_s() > 0

    def test_closed_loop_rejects_bad_depth(self):
        sim = _simulator()
        with pytest.raises(ValueError):
            sim.run_closed_loop([_read(0, 0.0, [0])], queue_depth=0)

    def test_deeper_queue_is_not_slower(self):
        def tput(depth):
            sim = _simulator()
            sim.preload(range(12), -100.0, 0.0)
            requests = [_read(i, 0.0, [i % 12]) for i in range(60)]
            return sim.run_closed_loop(requests, queue_depth=depth).throughput_mb_s()

        assert tput(8) >= tput(1) * 0.99


class TestUtilisationReport:
    def test_idle_device(self):
        sim = _simulator()
        assert sim.utilisation_report() == {"die": 0.0, "channel": 0.0}

    def test_after_reads(self):
        sim = _simulator()
        sim.preload(range(4), -100.0, 0.0)
        sim.run_requests([_read(0, 0.0, [0]), _read(1, 1000.0, [1])])
        report = sim.utilisation_report()
        assert 0.0 < report["die"] <= 1.0
        assert 0.0 < report["channel"] <= 1.0
        # Senses (50us) outweigh transfers (48us) per read on this load.
        assert report["die"] >= report["channel"] * 0.9


class TestQueueWaitReport:
    def test_shape(self):
        report = _simulator().queue_wait_report()
        assert set(report) == {"die", "channel"}
        for stats in report.values():
            assert set(stats) == {"host_read", "host_write", "internal"}
            for entry in stats.values():
                assert entry["ops"] == 0
                assert entry["mean_wait_us"] == 0.0

    def test_contended_reads_show_die_wait(self):
        sim = _simulator()
        sim.preload(range(4), -100.0, 0.0)
        # lpns 0 and 2 share a die: the second sense queues behind the first.
        sim.run_requests([_read(0, 0.0, [0, 2])])
        reads = sim.queue_wait_report()["die"]["host_read"]
        assert reads["ops"] == 2
        assert reads["total_wait_us"] == pytest.approx(50.0)  # one LSB sense


class TestTracedRuns:
    def test_traced_run_leaves_complete_spans(self):
        from repro.obs import MemorySink, Tracer

        sink = MemorySink()
        sim = SsdSimulator(
            geometry=_geometry(),
            timing=TimingSpec.tlc_table2(),
            coding=conventional_tlc(),
            refresh_policy=RefreshPolicy(mode=RefreshMode.BASELINE, period_us=1e9),
            seed=5,
            tracer=Tracer(sink),
        )
        sim.preload(range(4), -100.0, 0.0)
        sim.run_requests([_read(0, 0.0, [0]), _write(1, 1000.0, [1])])
        spans = sink.by_kind("read_span")
        assert len(spans) == 1
        critical = spans[0]["critical"]
        # Idle LSB read: no wait, 50 sense, 48 transfer, 20 ECC, 5 host.
        assert critical["queue_wait_us"] == pytest.approx(0.0)
        assert critical["sense_us"] == pytest.approx(50.0)
        assert critical["transfer_us"] == pytest.approx(48.0)
        assert critical["ecc_us"] == pytest.approx(20.0)
        assert spans[0]["response_us"] == pytest.approx(123.0)
        writes = sink.by_kind("write_span")
        assert len(writes) == 1
        assert writes[0]["critical"]["program_us"] == pytest.approx(2300.0)


class TestScheduler:
    def test_host_request_validation(self):
        with pytest.raises(ValueError):
            HostRequest(0, 0.0, True, (), 100)
        with pytest.raises(ValueError):
            HostRequest(0, 0.0, True, (1,), 0)

    def test_outstanding_completion_fires_once(self):
        from repro.sim.scheduler import OutstandingRequest

        fired = []
        req = _read(0, 0.0, [1, 2])
        tracker = OutstandingRequest(req, 2, lambda r, t: fired.append(t))
        tracker.page_done(10.0)
        assert fired == []
        tracker.page_done(20.0)
        assert fired == [20.0]
        with pytest.raises(RuntimeError):
            tracker.page_done(30.0)
