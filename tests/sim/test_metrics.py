"""Tests for metrics collectors (repro.sim.metrics)."""

from __future__ import annotations

import pytest

from repro.sim.metrics import LatencyStats, ReadMixCounters, SimMetrics


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert stats.mean_us == 0.0
        # An empty population has no percentiles: None, never a fake 0.0
        # (indistinguishable from a genuinely instant response) and
        # never an IndexError.
        assert stats.percentile(50) is None
        assert stats.percentile(99) is None
        assert stats.max_us == 0.0

    def test_empty_summary_propagates_none(self):
        summary = LatencyStats().summary()
        assert summary["count"] == 0
        assert summary["mean_us"] == 0.0
        assert summary["p50_us"] is None
        assert summary["p95_us"] is None
        assert summary["p99_us"] is None
        assert summary["max_us"] == 0.0

    def test_single_sample_is_every_percentile(self):
        stats = LatencyStats()
        stats.add(42.0)
        for q in (1, 50, 95, 99, 100):
            assert stats.percentile(q) == 42.0
        summary = stats.summary()
        assert summary["p50_us"] == 42.0
        assert summary["p99_us"] == 42.0
        assert summary["max_us"] == 42.0

    def test_mean_and_total(self):
        stats = LatencyStats()
        for v in (10.0, 20.0, 30.0):
            stats.add(v)
        assert stats.mean_us == 20.0
        assert stats.total_us == 60.0
        assert stats.max_us == 30.0

    def test_percentiles_nearest_rank(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.add(float(v))
        assert stats.percentile(50) == 50.0
        assert stats.percentile(95) == 95.0
        assert stats.percentile(99) == 99.0
        assert stats.percentile(100) == 100.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LatencyStats().add(-1.0)

    def test_rejects_bad_quantile(self):
        stats = LatencyStats()
        stats.add(1.0)
        with pytest.raises(ValueError):
            stats.percentile(0)
        with pytest.raises(ValueError):
            stats.percentile(101)

    def test_sorted_cache_invalidated_by_add(self):
        stats = LatencyStats()
        for v in (30.0, 10.0, 20.0):
            stats.add(v)
        assert stats.percentile(100) == 30.0  # populates the cache
        stats.add(99.0)
        assert stats.percentile(100) == 99.0  # cache must not go stale
        assert stats.percentile(25) == 10.0

    def test_repeated_percentiles_share_one_sort(self):
        stats = LatencyStats()
        for v in range(1000, 0, -1):
            stats.add(float(v))
        stats.percentile(50)
        assert stats._sorted is not None
        cached = stats._sorted
        stats.percentile(95)
        assert stats._sorted is cached  # no re-sort between queries

    def test_summary_keys_and_values(self):
        stats = LatencyStats()
        for v in range(1, 101):
            stats.add(float(v))
        summary = stats.summary()
        assert summary == {
            "count": 100,
            "mean_us": 50.5,
            "p50_us": 50.0,
            "p95_us": 95.0,
            "p99_us": 99.0,
            "max_us": 100.0,
        }

    def test_summary_empty(self):
        summary = LatencyStats().summary()
        assert summary["count"] == 0
        assert summary["mean_us"] == 0.0
        assert summary["max_us"] == 0.0


class TestReadMix:
    def test_tlc_accounting(self):
        mix = ReadMixCounters()
        mix.record(0, (True, True, True), False)   # LSB
        mix.record(1, (False, True, True), False)  # CSB, LSB invalid
        mix.record(1, (True, True, True), False)   # CSB, all valid
        mix.record(2, (False, True, True), True)   # MSB, lower invalid, IDA
        mix.record(2, (True, True, True), False)   # MSB, all valid
        assert mix.total == 5
        assert mix.fraction_of_type(0) == pytest.approx(0.2)
        assert mix.csb_invalid_fraction() == pytest.approx(0.5)
        assert mix.msb_invalid_fraction(2) == pytest.approx(0.5)
        assert mix.ida_fast_reads == 1

    def test_msb_counts_any_invalid_lower(self):
        mix = ReadMixCounters()
        mix.record(2, (True, False, True), False)
        mix.record(2, (False, False, True), False)
        assert mix.msb_with_invalid_lower == 2

    def test_mlc_accounting(self):
        mix = ReadMixCounters()
        mix.record(1, (False, True), False)
        mix.record(1, (True, True), False)
        assert mix.msb_with_invalid_lower == 1

    def test_mlc_lsb_reads_never_count_as_invalid_lower(self):
        mix = ReadMixCounters()
        mix.record(0, (False, True), False)  # LSB read, LSB itself invalid
        mix.record(0, (True, True), False)
        assert mix.msb_with_invalid_lower == 0
        assert mix.csb_with_invalid_lsb == 0  # MLC has no CSB
        assert mix.fraction_of_type(0) == 1.0

    def test_mlc_msb_invalid_fraction_uses_bit_one(self):
        mix = ReadMixCounters()
        mix.record(1, (False, True), True)
        mix.record(1, (True, True), False)
        mix.record(0, (True, True), False)
        assert mix.msb_invalid_fraction(1) == pytest.approx(0.5)
        assert mix.ida_fast_reads == 1

    def test_empty_fractions(self):
        mix = ReadMixCounters()
        assert mix.fraction_of_type(0) == 0.0
        assert mix.fraction_of_type(7) == 0.0  # type never recorded
        assert mix.csb_invalid_fraction() == 0.0
        assert mix.msb_invalid_fraction(2) == 0.0
        assert mix.msb_invalid_fraction(1) == 0.0
        assert mix.total == 0

    def test_fraction_of_unseen_type_with_traffic(self):
        mix = ReadMixCounters()
        mix.record(0, (True, True, True), False)
        assert mix.fraction_of_type(2) == 0.0
        assert mix.csb_invalid_fraction() == 0.0  # no CSB reads yet


class TestSimMetrics:
    def test_throughput(self):
        metrics = SimMetrics()
        metrics.bytes_read = 50_000_000
        metrics.bytes_written = 10_000_000
        metrics.start_us = 0.0
        metrics.end_us = 1_000_000.0  # one second
        assert metrics.throughput_mb_s() == pytest.approx(60.0)
        assert metrics.read_throughput_mb_s() == pytest.approx(50.0)

    def test_zero_elapsed(self):
        metrics = SimMetrics()
        assert metrics.throughput_mb_s() == 0.0
