"""Tests for the event engine (repro.sim.engine)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import SimEngine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = SimEngine()
        fired = []
        engine.at(30.0, lambda: fired.append("c"))
        engine.at(10.0, lambda: fired.append("a"))
        engine.at(20.0, lambda: fired.append("b"))
        engine.run()
        assert fired == ["a", "b", "c"]
        assert engine.now == 30.0

    def test_ties_fire_in_insertion_order(self):
        engine = SimEngine()
        fired = []
        for label in "abc":
            engine.at(5.0, lambda label=label: fired.append(label))
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_after_is_relative(self):
        engine = SimEngine()
        times = []
        engine.at(10.0, lambda: engine.after(5.0, lambda: times.append(engine.now)))
        engine.run()
        assert times == [15.0]

    def test_callbacks_can_schedule_more(self):
        engine = SimEngine()
        counter = []

        def chain():
            counter.append(engine.now)
            if len(counter) < 5:
                engine.after(1.0, chain)

        engine.at(0.0, chain)
        engine.run()
        assert counter == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_scheduling_in_the_past_rejected(self):
        engine = SimEngine()
        engine.at(10.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError, match="cannot schedule"):
            engine.at(5.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimEngine().after(-1.0, lambda: None)


class TestPastTolerance:
    """Float round-off in `after()` chains must not abort a run."""

    def test_round_off_hair_in_past_clamps_to_now(self):
        engine = SimEngine()
        engine.at(100.0, lambda: None)
        engine.run()
        fired = []
        engine.at(100.0 - 1e-10, lambda: fired.append(engine.now))
        engine.run()
        assert fired == [100.0]  # clamped, not rejected

    def test_relative_tolerance_at_large_clock_values(self):
        engine = SimEngine()
        engine.at(1e9, lambda: None)
        engine.run()
        # A few ulps at now=1e9 is ~1e-7 — absolute tolerance alone
        # would reject it.
        engine.at(1e9 - 1e-7 * 0.5, lambda: None)
        engine.run()
        assert engine.now == 1e9

    def test_genuinely_past_times_still_raise(self):
        engine = SimEngine()
        engine.at(100.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError, match="cannot schedule"):
            engine.at(99.9, lambda: None)


class TestRewind:
    def test_rewind_restores_previous_event_time(self):
        engine = SimEngine()
        engine.at(10.0, lambda: None)
        engine.at(25.0, lambda: engine.rewind_to_previous_event())
        engine.run()
        assert engine.now == 10.0

    def test_rewind_with_pending_events_rejected(self):
        engine = SimEngine()
        seen = []

        def observer():
            with pytest.raises(RuntimeError):
                engine.rewind_to_previous_event()
            seen.append(True)

        engine.at(5.0, observer)
        engine.at(10.0, lambda: None)
        engine.run()
        assert seen == [True]


class TestRunUntil:
    def test_until_leaves_later_events(self):
        engine = SimEngine()
        fired = []
        engine.at(10.0, lambda: fired.append(1))
        engine.at(30.0, lambda: fired.append(2))
        engine.run(until=20.0)
        assert fired == [1]
        assert engine.now == 20.0
        assert engine.pending == 1
        engine.run()
        assert fired == [1, 2]

    def test_step(self):
        engine = SimEngine()
        engine.at(1.0, lambda: None)
        assert engine.step() is True
        assert engine.step() is False
        assert engine.processed == 1


class TestDeterminism:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=40))
    def test_any_schedule_fires_sorted(self, times):
        engine = SimEngine()
        fired = []
        for t in times:
            engine.at(t, lambda t=t: fired.append(t))
        engine.run()
        assert fired == sorted(fired)
